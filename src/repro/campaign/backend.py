"""Result-store backends behind ``repro stats``.

Two storage shapes exist for campaign results:

* the **JSON store** (:class:`~repro.campaign.store.ResultStore`) —
  one JSON document per run, human-greppable, the right shape for
  10¹–10³ runs;
* the **columnar store** (:class:`~repro.archive.columnar.
  ColumnarStore`) — fixed-dtype record batches, the right shape for
  10⁵–10⁶ per-job records from archive replays, aggregated by
  streaming mmapped batches without a single ``json.loads``.

:func:`detect_backend` sniffs a directory and returns the matching
:class:`ResultBackend`, so ``repro stats <dir>`` works identically
on a classic campaign store, a replay store (JSON run records plus a
``columnar/`` subdirectory — the columnar view wins, that is where
the per-job truth lives), or a bare columnar root.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from pathlib import Path

from repro.errors import ConfigError


class ResultBackend(ABC):
    """Uniform aggregation surface over one result-store shape."""

    #: Short backend tag reported in aggregates (``json-store`` /
    #: ``columnar``).
    name: str = "?"

    @abstractmethod
    def aggregate(self) -> dict[str, object]:
        """Full aggregate document (what ``--format json`` emits)."""

    @abstractmethod
    def summary_rows(self) -> list[dict[str, object]]:
        """Flat table rows (what ``--format table|csv`` emit)."""


class JsonStoreBackend(ResultBackend):
    """Classic per-run JSON campaign store."""

    name = "json-store"

    def __init__(self, store_dir: str | Path) -> None:
        self.store_dir = Path(store_dir)

    def aggregate(self) -> dict[str, object]:
        from repro.observability.stats import aggregate_store

        document = aggregate_store(self.store_dir)
        document["backend"] = self.name
        return document

    def summary_rows(self) -> list[dict[str, object]]:
        rows = self.aggregate().get("strategies", [])
        return list(rows)  # type: ignore[arg-type]


class ColumnarBackend(ResultBackend):
    """Columnar replay store: streamed, JSON-free aggregation.

    *store_dir* (when the columnar root lives inside a replay store)
    lets the aggregate pick up the chain-level ``stitched.json``
    context — strategy, archive id — without touching run records.
    """

    name = "columnar"

    def __init__(
        self, columnar_dir: str | Path, store_dir: str | Path | None = None
    ) -> None:
        self.columnar_dir = Path(columnar_dir)
        self.store_dir = Path(store_dir) if store_dir is not None else None

    def aggregate(self) -> dict[str, object]:
        from repro.archive.replay import STITCHED_NAME, stitched_summary

        document: dict[str, object] = {
            "store": str(self.store_dir or self.columnar_dir),
            "backend": self.name,
            "summary": stitched_summary(self.columnar_dir),
            "windows": self.summary_rows(),
        }
        if self.store_dir is not None:
            stitched_path = self.store_dir / STITCHED_NAME
            if stitched_path.is_file():
                try:
                    stitched = json.loads(
                        stitched_path.read_text(encoding="utf-8")
                    )
                except (OSError, json.JSONDecodeError):
                    stitched = None
                if isinstance(stitched, dict):
                    for key in ("archive_id", "chain", "strategy",
                                "num_nodes"):
                        if key in stitched:
                            document[key] = stitched[key]
        return document

    def summary_rows(self) -> list[dict[str, object]]:
        from repro.archive.columnar import ColumnarStore

        store = ColumnarStore(self.columnar_dir)
        rows: list[dict[str, object]] = []
        if "windows" not in store.families():
            return rows
        for batch in store.iter_batches("windows"):
            for record in batch:
                rows.append({
                    "window": int(record["window"]),
                    "jobs_loaded": int(record["jobs_loaded"]),
                    "jobs_flushed": int(record["jobs_flushed"]),
                    "events": int(record["events_dispatched"]),
                    "passes": int(record["scheduler_passes"]),
                    "boundary_t": float(record["boundary_time"]),
                    "carried_run": int(record["carried_running"]),
                    "carried_queue": int(record["carried_queued"]),
                })
        rows.sort(key=lambda r: r["window"])  # type: ignore[arg-type]
        return rows


def detect_backend(path: str | Path) -> ResultBackend:
    """Pick the backend for *path* (see module docstring)."""
    from repro.archive.columnar import ColumnarStore
    from repro.archive.replay import COLUMNAR_DIR_NAME

    root = Path(path)
    if not root.is_dir():
        raise ConfigError(f"no such campaign store: {root}")
    nested = root / COLUMNAR_DIR_NAME
    if ColumnarStore.is_store(nested):
        return ColumnarBackend(nested, store_dir=root)
    if ColumnarStore.is_store(root):
        return ColumnarBackend(root)
    return JsonStoreBackend(root)
