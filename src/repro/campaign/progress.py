"""Structured campaign progress: events, throughput, ETA, JSONL log.

The runner emits one :class:`ProgressEvent` per run state change
(started / completed / failed / cached / retry).  The CLI renders them
as one-line updates; :class:`JsonlProgressLog` records them for later
analysis of campaign behaviour (queueing, retry storms, throughput
over time).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable

#: Event kinds, in the vocabulary the JSONL log and tests rely on.
STARTED = "started"
COMPLETED = "completed"
FAILED = "failed"
CACHED = "cached"
RETRY = "retry"
QUARANTINED = "quarantined"
#: Run checkpointed and parked mid-flight (shutdown or guard shed);
#: a later ``repro resume`` continues it from its snapshot.
SUSPENDED = "suspended"
#: A resource guard tripped (RSS budget, disk watermark) — campaign-
#: level, so ``run_id`` may be empty.
GUARD = "guard"


@dataclass(frozen=True)
class ProgressEvent:
    """One state change of one run, with campaign-level counters."""

    kind: str
    run_id: str
    label: str
    #: Runs finished so far (completed + failed + cached + quarantined).
    done: int
    total: int
    completed: int
    failed: int
    cached: int
    #: Seconds since the campaign started.
    elapsed_s: float
    #: Executed (non-cached) terminal runs per second so far.
    throughput_rps: float
    #: Estimated seconds to campaign completion (NaN while unknown).
    eta_s: float
    attempt: int = 1
    error: str | None = None
    #: Poison runs isolated so far (see repro.diagnostics.quarantine).
    quarantined: int = 0
    #: Runs parked mid-flight with a snapshot (see repro.snapshot).
    suspended: int = 0

    def as_dict(self) -> dict[str, object]:
        data = asdict(self)
        if not data["quarantined"]:
            # Quarantine-free campaigns keep the pre-diagnostics JSONL
            # schema byte for byte.
            del data["quarantined"]
        if not data["suspended"]:
            # Likewise uninterrupted campaigns keep the pre-snapshot
            # schema.
            del data["suspended"]
        return data

    def render(self) -> str:
        """One-line human-readable form for terminal progress."""
        parts = [
            f"[{self.done}/{self.total}]",
            f"{self.kind:<9}",
            self.label or self.run_id,
        ]
        if self.kind == RETRY:
            parts.append(f"(attempt {self.attempt})")
        if self.error:
            parts.append(f"— {self.error}")
        counters = (
            f"ok={self.completed} cached={self.cached} failed={self.failed}"
        )
        if self.quarantined:
            counters += f" quarantined={self.quarantined}"
        if self.suspended:
            counters += f" suspended={self.suspended}"
        timing = f"{self.elapsed_s:6.1f}s"
        if self.throughput_rps > 0:
            timing += f" {self.throughput_rps:.2f} runs/s"
        if self.eta_s == self.eta_s:  # not NaN
            timing += f" eta {self.eta_s:.0f}s"
        return f"{' '.join(parts)}  |  {counters}  |  {timing}"


class ProgressTracker:
    """Counts run outcomes and derives throughput and ETA."""

    def __init__(
        self,
        total: int,
        clock: Callable[[], float] = time.monotonic,
        sink: Callable[[ProgressEvent], None] | None = None,
    ) -> None:
        self.total = total
        self.completed = 0
        self.failed = 0
        self.cached = 0
        self.retries = 0
        self.quarantined = 0
        self.suspended = 0
        self._clock = clock
        self._t0 = clock()
        self._sink = sink
        self.events: list[ProgressEvent] = []

    @property
    def done(self) -> int:
        return self.completed + self.failed + self.cached + self.quarantined

    def emit(
        self,
        kind: str,
        run_id: str,
        label: str = "",
        attempt: int = 1,
        error: str | None = None,
    ) -> ProgressEvent:
        if kind == COMPLETED:
            self.completed += 1
        elif kind == FAILED:
            self.failed += 1
        elif kind == CACHED:
            self.cached += 1
        elif kind == RETRY:
            self.retries += 1
        elif kind == QUARANTINED:
            self.quarantined += 1
        elif kind == SUSPENDED:
            # Deliberately not part of done: a suspended run is parked,
            # not finished, and resume will complete it.
            self.suspended += 1
        elapsed = self._clock() - self._t0
        executed = self.completed + self.failed
        throughput = executed / elapsed if elapsed > 0 and executed else 0.0
        remaining = self.total - self.done
        eta = remaining / throughput if throughput > 0 else float("nan")
        event = ProgressEvent(
            kind=kind,
            run_id=run_id,
            label=label,
            done=self.done,
            total=self.total,
            completed=self.completed,
            failed=self.failed,
            cached=self.cached,
            elapsed_s=elapsed,
            throughput_rps=throughput,
            eta_s=eta,
            attempt=attempt,
            error=error,
            quarantined=self.quarantined,
            suspended=self.suspended,
        )
        self.events.append(event)
        if self._sink is not None:
            self._sink(event)
        return event


class JsonlProgressLog:
    """Appends every event as one JSON line; usable as a tracker sink."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def __call__(self, event: ProgressEvent) -> None:
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(event.as_dict(), sort_keys=True) + "\n")


def tee(*sinks: Callable[[ProgressEvent], None]) -> Callable[[ProgressEvent], None]:
    """Combine several event sinks into one."""

    def fanout(event: ProgressEvent) -> None:
        for sink in sinks:
            sink(event)

    return fanout
