"""Declarative campaign descriptions and the run-parameter schema.

A run is fully described by a plain JSON-serialisable ``params`` dict;
its identity is the SHA-256 of the canonical JSON encoding.  Anything
that changes the result changes the hash, and nothing else does — so
the artifact store can cache completed runs across campaign edits,
interrupted re-runs and machines.

Two parameter kinds exist:

``simulate``
    Generate (or inline) a workload trace and run one strategy over
    it.  This is what the grid axes of a :class:`CampaignSpec` expand
    into.
``experiment``
    Execute one of the paper's registered experiment drivers
    (``e1``..``e24``) and capture its rows and printed artefact.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.errors import ConfigError
from repro.workload.spec import JobSpec
from repro.workload.trace import WorkloadTrace

#: Grid defaults mirror the evaluation setup (EXPERIMENTS.md).
DEFAULT_JOBS = 400
DEFAULT_NODES = 128
DEFAULT_SEED = 7
DEFAULT_LOAD = 1.5
DEFAULT_SHARE_FRACTION = 0.85
DEFAULT_THRESHOLD = 1.1


def canonical_json(value: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace variation."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def run_id_of(params: Mapping[str, object]) -> str:
    """Stable content hash identifying a run (16 hex chars)."""
    digest = hashlib.sha256(canonical_json(params).encode("utf-8"))
    return digest.hexdigest()[:16]


# ----------------------------------------------------------------------
# Parameter builders
# ----------------------------------------------------------------------
def trinity_workload(
    jobs: int,
    nodes: int,
    seed: int,
    offered_load: float = DEFAULT_LOAD,
    share_fraction: float = DEFAULT_SHARE_FRACTION,
    share_obeys_app: bool = False,
    overestimate_range: tuple[float, float] | None = None,
    diurnal_amplitude: float | None = None,
    name: str = "trinity-eval",
) -> dict[str, object]:
    """Workload params for an in-worker generated Trinity campaign."""
    workload: dict[str, object] = {
        "kind": "trinity",
        "jobs": int(jobs),
        "nodes": int(nodes),
        "seed": int(seed),
        "offered_load": float(offered_load),
        "share_fraction": float(share_fraction),
        "share_obeys_app": bool(share_obeys_app),
        "name": name,
    }
    if overestimate_range is not None:
        workload["overestimate_range"] = [float(x) for x in overestimate_range]
    if diurnal_amplitude is not None:
        workload["diurnal_amplitude"] = float(diurnal_amplitude)
    return workload


def campaign_workload(
    num_jobs: int = DEFAULT_JOBS,
    cluster_nodes: int = DEFAULT_NODES,
    seed: int = DEFAULT_SEED,
    offered_load: float = DEFAULT_LOAD,
    share_fraction: float = DEFAULT_SHARE_FRACTION,
) -> dict[str, object]:
    """The canonical evaluation workload — mirrors
    :func:`repro.analysis.experiments.default_campaign` exactly."""
    return trinity_workload(
        jobs=num_jobs,
        nodes=cluster_nodes,
        seed=seed,
        offered_load=offered_load,
        share_fraction=share_fraction,
    )


def inline_workload(trace: WorkloadTrace) -> dict[str, object]:
    """Embed an already-built trace verbatim (for traces whose
    derivation is order-dependent, e.g. the E8 share-fraction sweep)."""
    return {
        "kind": "inline",
        "name": trace.name,
        "jobs": [asdict(job) for job in trace],
    }


def trace_from_inline(workload: Mapping[str, object]) -> WorkloadTrace:
    """Rebuild the trace embedded by :func:`inline_workload`."""
    jobs = [JobSpec(**job) for job in workload["jobs"]]  # type: ignore[union-attr]
    return WorkloadTrace(jobs, name=str(workload.get("name", "inline")))


def simulate_params(
    strategy: str,
    workload: Mapping[str, object],
    num_nodes: int,
    config: Mapping[str, object] | None = None,
) -> dict[str, object]:
    """Full run params for one simulation."""
    params: dict[str, object] = {
        "kind": "simulate",
        "strategy": strategy,
        "num_nodes": int(num_nodes),
        "workload": dict(workload),
    }
    if config:
        params["config"] = dict(config)
    return params


def experiment_params(experiment_id: str) -> dict[str, object]:
    """Run params executing one registered paper experiment."""
    return {"kind": "experiment", "experiment": experiment_id.lower()}


# ----------------------------------------------------------------------
# Run and campaign specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One executable unit of a campaign: params plus its identity."""

    params: dict[str, object]
    run_id: str

    @staticmethod
    def from_params(params: Mapping[str, object]) -> "RunSpec":
        params = dict(params)
        return RunSpec(params=params, run_id=run_id_of(params))

    @property
    def label(self) -> str:
        """Short human-readable tag for progress lines."""
        if self.params.get("kind") == "experiment":
            return str(self.params["experiment"])
        workload = self.params.get("workload", {})
        bits = [str(self.params.get("strategy", "?"))]
        if isinstance(workload, Mapping) and "seed" in workload:
            bits.append(f"seed={workload['seed']}")
            bits.append(f"load={workload.get('offered_load')}")
        config = self.params.get("config")
        if isinstance(config, Mapping) and "share_threshold" in config:
            bits.append(f"theta={config['share_threshold']}")
        return " ".join(bits)


@dataclass
class CampaignSpec:
    """A declarative experiment campaign.

    The grid axes (``strategies`` × ``seeds`` × ``loads`` ×
    ``share_fractions`` × ``share_thresholds`` × ``cluster_sizes``)
    expand cartesian-style into one simulation run each; ``experiments``
    adds one run per named paper experiment (``"e1"``..``"e24"`` or
    ``"all"``).
    """

    name: str = "campaign"
    jobs: int = DEFAULT_JOBS
    strategies: tuple[str, ...] = ("easy_backfill", "shared_backfill")
    seeds: tuple[int, ...] = (DEFAULT_SEED,)
    loads: tuple[float, ...] = (DEFAULT_LOAD,)
    share_fractions: tuple[float, ...] = (DEFAULT_SHARE_FRACTION,)
    share_thresholds: tuple[float, ...] = (DEFAULT_THRESHOLD,)
    cluster_sizes: tuple[int, ...] = (DEFAULT_NODES,)
    experiments: tuple[str, ...] = ()
    #: Extra :class:`~repro.slurm.config.SchedulerConfig` keyword
    #: arguments applied to every grid run.
    config: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for axis in ("strategies", "seeds", "loads", "share_fractions",
                     "share_thresholds", "cluster_sizes", "experiments"):
            values = getattr(self, axis)
            if not isinstance(values, tuple):
                setattr(self, axis, tuple(values))
        if not self.experiments:
            for axis in ("strategies", "seeds", "loads", "share_fractions",
                         "share_thresholds", "cluster_sizes"):
                if not getattr(self, axis):
                    raise ConfigError(f"campaign axis {axis!r} is empty")
        if self.jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {self.jobs}")

    # ------------------------------------------------------------------
    def expand(self) -> list[RunSpec]:
        """All run specs of this campaign, in deterministic order."""
        runs: list[RunSpec] = []
        grid = itertools.product(
            self.strategies,
            self.seeds,
            self.loads,
            self.share_fractions,
            self.share_thresholds,
            self.cluster_sizes,
        )
        for strategy, seed, load, fraction, threshold, size in grid:
            config = dict(self.config)
            config["share_threshold"] = float(threshold)
            workload = trinity_workload(
                jobs=self.jobs,
                nodes=size,
                seed=seed,
                offered_load=load,
                share_fraction=fraction,
            )
            runs.append(
                RunSpec.from_params(
                    simulate_params(strategy, workload, size, config=config)
                )
            )
        for experiment_id in self._experiment_ids():
            runs.append(RunSpec.from_params(experiment_params(experiment_id)))
        seen: set[str] = set()
        unique: list[RunSpec] = []
        for run in runs:
            if run.run_id not in seen:
                seen.add(run.run_id)
                unique.append(run)
        return unique

    def _experiment_ids(self) -> list[str]:
        if any(e.lower() == "all" for e in self.experiments):
            from repro.analysis.experiments import EXPERIMENT_REGISTRY

            return list(EXPERIMENT_REGISTRY)
        return [e.lower() for e in self.experiments]

    # ------------------------------------------------------------------
    # (De)serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "jobs": self.jobs,
            "strategies": list(self.strategies),
            "seeds": list(self.seeds),
            "loads": list(self.loads),
            "share_fractions": list(self.share_fractions),
            "share_thresholds": list(self.share_thresholds),
            "cluster_sizes": list(self.cluster_sizes),
            "experiments": list(self.experiments),
            "config": dict(self.config),
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "CampaignSpec":
        known = {
            "name", "jobs", "strategies", "seeds", "loads",
            "share_fractions", "share_thresholds", "cluster_sizes",
            "experiments", "config",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown campaign spec keys: {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        kwargs: dict[str, object] = dict(data)
        for axis in ("strategies", "seeds", "loads", "share_fractions",
                     "share_thresholds", "cluster_sizes", "experiments"):
            if axis in kwargs:
                values = kwargs[axis]
                if not isinstance(values, Iterable) or isinstance(values, str):
                    raise ConfigError(f"campaign axis {axis!r} must be a list")
                kwargs[axis] = tuple(values)  # type: ignore[arg-type]
        return CampaignSpec(**kwargs)  # type: ignore[arg-type]

    @staticmethod
    def from_file(path: str | Path) -> "CampaignSpec":
        """Load a campaign spec from a JSON file."""
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ConfigError(f"{path}: invalid JSON: {exc}") from exc
        if not isinstance(data, Mapping):
            raise ConfigError(f"{path}: campaign spec must be a JSON object")
        return CampaignSpec.from_dict(data)


def expand_many(specs: Sequence[CampaignSpec]) -> list[RunSpec]:
    """Concatenate and de-duplicate the runs of several campaigns."""
    seen: set[str] = set()
    runs: list[RunSpec] = []
    for spec in specs:
        for run in spec.expand():
            if run.run_id not in seen:
                seen.add(run.run_id)
                runs.append(run)
    return runs
