"""The campaign executor: process-pool fan-out with a serial twin.

Both execution modes funnel every run through the same picklable
entry function (:func:`repro.slurm.entry.execute_run` by default), so
a campaign executed with ``workers=8`` produces byte-identical result
payloads to the same campaign executed serially — the simulator's
deterministic RNG streams make that a testable guarantee, and the
test suite tests it.

Failure semantics:

* an entry-function exception is a failed *attempt*; attempts are
  bounded (``retries`` extra tries) with exponential backoff;
* a hard worker crash (``BrokenProcessPool``) costs every in-flight
  run one attempt — the culprit cannot be attributed — and the pool
  is rebuilt;
* a run exceeding ``timeout`` seconds is abandoned, costs one
  attempt, and forces a pool rebuild (a running task cannot be
  killed otherwise); collateral in-flight runs are re-queued without
  an attempt penalty;
* a *poison run* — one that crashes its worker or trips a watchdog
  ``quarantine_after`` times — is isolated immediately (even with
  attempts remaining): it lands in :attr:`CampaignResult.quarantined`
  with its replay bundle and the rest of the campaign completes.

Completed runs are persisted through :class:`~repro.campaign.store.
ResultStore` as they finish, so an interrupted campaign resumes from
its last completed run.  Failed and quarantined runs are *not*
persisted: a re-run retries exactly the missing and failed work.

Preemption semantics (armed by ``snapshot_dir``, see
:mod:`repro.snapshot`):

* SIGTERM/SIGINT requests a *graceful shutdown*: in-flight workers
  checkpoint their runs at the next event boundary, each parked run
  lands in :attr:`CampaignResult.suspended` with its snapshot path,
  and queued runs are simply left for ``repro resume``;
* a worker whose RSS exceeds the guard budget is *shed*: SIGTERMed
  individually, its run snapshots, re-queues with no attempt penalty,
  and later resumes from the snapshot in a fresh-memory slot;
* a disk watermark trip pauses dispatch (backpressure) until free
  space recovers, without abandoning in-flight work.
"""

from __future__ import annotations

import os
import signal
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.campaign.progress import (
    CACHED,
    COMPLETED,
    FAILED,
    GUARD,
    QUARANTINED,
    RETRY,
    STARTED,
    SUSPENDED,
    ProgressEvent,
    ProgressTracker,
)
from repro.campaign.spec import RunSpec
from repro.campaign.store import ResultStore
from repro.diagnostics.bundle import bundle_path_for
from repro.diagnostics.quarantine import QuarantinedRun
from repro.errors import ConfigError, SuspendRequested, WatchdogError
from repro.snapshot import suspend as _suspend
from repro.snapshot.guards import ResourceGuards
from repro.snapshot.state import snapshot_path_for

Entry = Callable[[Mapping[str, object]], dict[str, object]]


def _worker_lifeline(parent_pid: int) -> None:
    """Pool-worker initializer: die when the campaign parent does.

    A hard-killed parent never shuts its pool down, and under the
    ``fork`` start method every worker inherits the call-queue pipe's
    *write* end too — so orphaned workers block on the queue forever
    while holding every inherited descriptor, including the store's
    advisory flock.  Linux delivers SIGTERM on parent death via
    ``PR_SET_PDEATHSIG``; a daemon watchdog thread polling the parent
    pid covers other platforms and the window before ``prctl`` runs.
    """
    try:
        import ctypes

        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(1, int(signal.SIGTERM), 0, 0, 0)  # PR_SET_PDEATHSIG
    except Exception:  # pragma: no cover - non-Linux best effort
        pass
    import threading

    def _watch() -> None:
        while True:
            if os.getppid() != parent_pid:
                os._exit(1)
            time.sleep(1.0)

    threading.Thread(
        target=_watch, daemon=True, name="parent-lifeline"
    ).start()
    if os.getppid() != parent_pid:  # parent died before we got here
        os._exit(1)


def _make_pool(workers: int) -> ProcessPoolExecutor:
    """Worker pool whose processes exit when this process dies."""
    return ProcessPoolExecutor(
        max_workers=workers,
        initializer=_worker_lifeline,
        initargs=(os.getpid(),),
    )


def _default_entry(
    bundle_dir: Path | None,
    snapshot_dir: Path | None = None,
    snapshot_every: str | None = None,
    telemetry_dir: Path | None = None,
) -> Entry:
    from repro.slurm.entry import execute_run

    kwargs: dict[str, str] = {}
    if bundle_dir is not None:
        kwargs["bundle_dir"] = str(bundle_dir)
    if snapshot_dir is not None:
        kwargs["snapshot_dir"] = str(snapshot_dir)
        if snapshot_every is not None:
            kwargs["snapshot_every"] = snapshot_every
    if telemetry_dir is not None:
        kwargs["telemetry_dir"] = str(telemetry_dir)
    if not kwargs:
        return execute_run
    # partial of a module-level function stays picklable for the pool.
    return partial(execute_run, **kwargs)


@dataclass(frozen=True)
class RunFailure:
    """A run whose attempts were exhausted."""

    run_id: str
    label: str
    attempts: int
    error: str


@dataclass(frozen=True)
class SuspendedRun:
    """A run parked mid-flight by a graceful shutdown.

    ``snapshot`` is the on-disk state file a resume continues from;
    ``None`` means the run restarts from scratch (still correct —
    just slower — because runs are deterministic).
    """

    run_id: str
    label: str
    snapshot: str | None = None


@dataclass
class CampaignResult:
    """Outcome of one campaign execution."""

    order: list[str]
    results: dict[str, dict[str, object]]
    failures: list[RunFailure] = field(default_factory=list)
    quarantined: list[QuarantinedRun] = field(default_factory=list)
    suspended: list[SuspendedRun] = field(default_factory=list)
    completed: int = 0
    cached: int = 0
    elapsed_s: float = 0.0
    #: True when a graceful shutdown cut the campaign short — even if
    #: no run was mid-flight (e.g. everything left was still queued).
    interrupted: bool = False

    @property
    def failed(self) -> int:
        return len(self.failures)

    @property
    def ok(self) -> bool:
        return (
            not self.failures
            and not self.quarantined
            and not self.interrupted
            and not self.suspended
        )

    def records(self) -> list[dict[str, object]]:
        """Successful result records, in campaign order."""
        return [self.results[rid] for rid in self.order if rid in self.results]

    def payloads(self) -> list[dict[str, object] | None]:
        """Entry payload per run in campaign order; None where failed."""
        out = []
        for rid in self.order:
            record = self.results.get(rid)
            out.append(record["result"] if record else None)  # type: ignore[index]
        return out


class CampaignRunner:
    """Executes the runs of a campaign with caching, retry, recovery.

    Parameters
    ----------
    store:
        Artifact store for caching/resume; ``None`` keeps results only
        in memory (every run executes).
    workers:
        Process count; ``1`` executes serially in-process (the
        bit-identical fallback).  Per-run ``timeout`` requires
        ``workers > 1`` — a cooperating process can be abandoned, the
        calling thread cannot.
    timeout:
        Per-run wall-clock budget in seconds (parallel mode only).
    retries:
        Extra attempts after a failed one (0 = fail fast).
    backoff:
        Base seconds of the exponential retry backoff
        (``backoff * 2**(attempt-1)``).
    entry:
        The run entry function; must be picklable for ``workers > 1``.
    progress:
        Optional sink receiving every :class:`ProgressEvent`.
    quarantine_after:
        Poison incidents (worker crashes, timeouts, watchdog trips) a
        single run may cause before it is quarantined instead of
        retried; ``None`` disables poison isolation entirely.
    bundle_dir:
        Directory where workers drop replay bundles for crashing runs
        (see :func:`repro.slurm.entry.execute_run`); ``None`` disables
        bundle capture.  Only applies to the default entry function.
    snapshot_dir:
        Directory for per-run state snapshots; arms preemption-safe
        execution (workers poll for suspension and checkpoint their
        runs).  ``None`` disables snapshotting — SIGTERM then kills the
        campaign the old-fashioned way.  Only applies to the default
        entry function.
    snapshot_every:
        Periodic snapshot trigger forwarded to workers: seconds
        (``"60"``, ``"2.5s"``) or an event count (``"5000e"``);
        ``None``/``"0"`` means only suspension writes snapshots.
    guards:
        Optional :class:`~repro.snapshot.guards.ResourceGuards`
        polled from the dispatch loop.
    lock_store:
        Acquire the store's advisory lock for the duration of
        :meth:`run` (fail fast when another campaign shares the
        store).  Ignored without a store.
    install_signal_handlers:
        Install SIGTERM/SIGINT → graceful-shutdown handlers for the
        duration of :meth:`run` (the CLI enables this; library callers
        usually trigger suspension programmatically).
    suspend_grace:
        Seconds to wait for in-flight workers to checkpoint during a
        graceful shutdown before abandoning them.
    telemetry_dir:
        Directory for per-run telemetry sidecar files; arms the
        telemetry subsystem in the workers (result payloads stay
        byte-identical).  After the campaign, the sidecars are merged
        into ``<store>/telemetry.json`` when a store is attached.
        Only applies to the default entry function.
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        workers: int = 1,
        timeout: float | None = None,
        retries: int = 2,
        backoff: float = 0.5,
        entry: Entry | None = None,
        progress: Callable[[ProgressEvent], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        quarantine_after: int | None = 2,
        bundle_dir: str | Path | None = None,
        snapshot_dir: str | Path | None = None,
        snapshot_every: str | None = None,
        guards: ResourceGuards | None = None,
        lock_store: bool = True,
        install_signal_handlers: bool = False,
        suspend_grace: float = 30.0,
        kill: Callable[[int, int], None] = os.kill,
        telemetry_dir: str | Path | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        if timeout is not None and timeout <= 0:
            raise ConfigError(f"timeout must be positive, got {timeout}")
        if backoff < 0:
            raise ConfigError(f"backoff must be >= 0, got {backoff}")
        if quarantine_after is not None and quarantine_after < 1:
            raise ConfigError(
                f"quarantine_after must be >= 1 or None, got {quarantine_after}"
            )
        if suspend_grace <= 0:
            raise ConfigError(
                f"suspend_grace must be positive, got {suspend_grace}"
            )
        self.store = store
        self.workers = workers
        self.timeout = timeout
        self.max_attempts = retries + 1
        self.backoff = backoff
        self.quarantine_after = quarantine_after
        self.bundle_dir = Path(bundle_dir) if bundle_dir is not None else None
        self.snapshot_dir = (
            Path(snapshot_dir) if snapshot_dir is not None else None
        )
        self.snapshot_every = snapshot_every
        self.guards = guards
        self.lock_store = lock_store
        self.install_signal_handlers = install_signal_handlers
        self.suspend_grace = suspend_grace
        self.telemetry_dir = (
            Path(telemetry_dir) if telemetry_dir is not None else None
        )
        self.entry = (
            entry
            if entry is not None
            else _default_entry(
                self.bundle_dir,
                self.snapshot_dir,
                self.snapshot_every,
                self.telemetry_dir,
            )
        )
        self.progress = progress
        self._clock = clock
        self._sleep = sleep
        self._kill = kill
        #: Poison incidents per run_id, reset per campaign execution.
        self._poison_counts: dict[str, int] = {}
        #: Worker pids already SIGTERMed by the RSS guard this cycle.
        self._shed_pids: set[int] = set()
        #: First-dispatch timestamp per run_id (quarantine provenance).
        self._run_started: dict[str, float] = {}
        #: Snapshot-resume re-dispatches per run_id (quarantine provenance).
        self._resume_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    def run(self, runs: Sequence[RunSpec]) -> CampaignResult:
        """Execute *runs*, skipping any already present in the store."""
        started = self._clock()
        self._poison_counts = {}
        self._shed_pids = set()
        self._run_started = {}
        self._resume_counts = {}
        if self.snapshot_dir is not None:
            self.snapshot_dir.mkdir(parents=True, exist_ok=True)
        tracker = ProgressTracker(
            total=len(runs), clock=self._clock, sink=self.progress
        )
        result = CampaignResult(order=[r.run_id for r in runs], results={})
        lock = (
            self.store.lock()
            if self.store is not None and self.lock_store
            else None
        )
        if lock is not None:
            lock.acquire()
        previous_handlers = (
            _suspend.install_signal_handlers()
            if self.install_signal_handlers
            else None
        )
        try:
            pending: list[RunSpec] = []
            for run in runs:
                if self.store is not None and self.store.has(run.run_id):
                    result.results[run.run_id] = self.store.load(run.run_id)
                    tracker.emit(CACHED, run.run_id, run.label)
                else:
                    pending.append(run)
            if pending:
                if self.workers == 1:
                    self._run_serial(pending, tracker, result)
                else:
                    self._run_parallel(pending, tracker, result)
        finally:
            if previous_handlers is not None:
                _suspend.restore_signal_handlers(previous_handlers)
            if lock is not None:
                lock.release()
        result.completed = tracker.completed
        result.cached = tracker.cached
        result.elapsed_s = self._clock() - started
        if self.telemetry_dir is not None and self.store is not None:
            # Runner-side merge: fold every per-worker sidecar into
            # one campaign-level telemetry document.
            from repro.observability.stats import write_campaign_telemetry

            write_campaign_telemetry(self.store.root, self.telemetry_dir)
        return result

    # ------------------------------------------------------------------
    # Shared bookkeeping
    # ------------------------------------------------------------------
    def _record(
        self, run: RunSpec, payload: dict[str, object], attempts: int
    ) -> dict[str, object]:
        record = {
            "run_id": run.run_id,
            "label": run.label,
            "params": run.params,
            "result": payload,
            "meta": {"attempts": attempts},
        }
        if self.store is not None:
            self.store.save(run.run_id, record)
            record = self.store.load(run.run_id)
        return record

    def _backoff_delay(self, attempt: int) -> float:
        return self.backoff * (2.0 ** (attempt - 1))

    def _poison_exhausted(self, run_id: str) -> bool:
        """Count one poison incident; True when the run must be isolated."""
        if self.quarantine_after is None:
            return False
        count = self._poison_counts.get(run_id, 0) + 1
        self._poison_counts[run_id] = count
        return count >= self.quarantine_after

    def _quarantine(
        self,
        run: RunSpec,
        error: str,
        tracker: ProgressTracker,
        result: CampaignResult,
    ) -> None:
        bundle: str | None = None
        if self.bundle_dir is not None:
            candidate = bundle_path_for(self.bundle_dir, run.run_id)
            if candidate.is_file():
                bundle = str(candidate)
        snapshot: str | None = None
        if self.snapshot_dir is not None:
            candidate = snapshot_path_for(self.snapshot_dir, run.run_id)
            if candidate.is_file():
                snapshot = str(candidate)
        started = self._run_started.get(run.run_id)
        result.quarantined.append(
            QuarantinedRun(
                run_id=run.run_id,
                label=run.label,
                incidents=self._poison_counts.get(run.run_id, 0),
                error=error,
                params=dict(run.params),
                bundle=bundle,
                elapsed_s=(
                    self._clock() - started if started is not None else 0.0
                ),
                resumes=self._resume_counts.get(run.run_id, 0),
                snapshot=snapshot,
            )
        )
        tracker.emit(
            QUARANTINED, run.run_id, run.label,
            attempt=self._poison_counts.get(run.run_id, 0), error=error,
        )

    # ------------------------------------------------------------------
    # Suspension and guard bookkeeping
    # ------------------------------------------------------------------
    def _park(
        self,
        run: RunSpec,
        tracker: ProgressTracker,
        result: CampaignResult,
        snapshot: str | None = None,
        note: str | None = None,
    ) -> None:
        """Record *run* as suspended (shutdown path)."""
        if snapshot is None and self.snapshot_dir is not None:
            candidate = snapshot_path_for(self.snapshot_dir, run.run_id)
            if candidate.is_file():
                snapshot = str(candidate)  # a periodic snapshot exists
        result.suspended.append(SuspendedRun(run.run_id, run.label, snapshot))
        tracker.emit(SUSPENDED, run.run_id, run.label, error=note)

    def _dispatch_paused(
        self, tracker: ProgressTracker, pids: Sequence[int], paused: bool
    ) -> bool:
        """Poll the resource guards; returns the new pause state.

        Disk trips pause dispatch (backpressure); RSS trips SIGTERM the
        offending worker so its run sheds — snapshots, re-queues and
        later resumes in a fresh-memory slot.  Every trip surfaces as a
        ``guard`` progress event.
        """
        if self.guards is None or not self.guards.armed:
            return False
        trips = self.guards.check(pids)
        if trips is None:
            return paused  # rate-limited: keep the previous state
        for trip in trips:
            tracker.emit(GUARD, run_id="", label=trip.kind, error=trip.message)
            if trip.kind == "rss" and trip.pid is not None:
                if trip.pid in self._shed_pids:
                    continue  # already asked; escalating would abort it
                try:
                    self._kill(trip.pid, signal.SIGTERM)
                except (OSError, ProcessLookupError):
                    continue  # worker already gone; pool layer handles it
                self._shed_pids.add(trip.pid)
        was_paused = paused
        paused = any(trip.kind == "disk" for trip in trips)
        if was_paused and not paused:
            tracker.emit(
                GUARD, run_id="", label="disk",
                error="store disk recovered; resuming dispatch",
            )
        return paused

    # ------------------------------------------------------------------
    # Serial fallback
    # ------------------------------------------------------------------
    def _run_serial(
        self,
        pending: Sequence[RunSpec],
        tracker: ProgressTracker,
        result: CampaignResult,
    ) -> None:
        paused = False
        for run in pending:
            # Backpressure: wait out a disk-watermark trip before
            # starting more work (suspension still gets through).
            while True:
                if _suspend.suspend_requested():
                    result.interrupted = True
                    _suspend.reset()
                    return
                paused = self._dispatch_paused(tracker, (), paused)
                if not paused:
                    break
                self._sleep(self.guards.poll_interval_s or 0.1)
            self._run_started.setdefault(run.run_id, self._clock())
            tracker.emit(STARTED, run.run_id, run.label)
            attempt = 0
            while True:
                attempt += 1
                try:
                    payload = self.entry(run.params)
                except SuspendRequested as exc:
                    # The entry already wrote the final snapshot (and
                    # reset the flag); park the run and stop dispatching.
                    result.interrupted = True
                    self._park(
                        run, tracker, result,
                        snapshot=exc.snapshot_path, note=str(exc),
                    )
                    return
                except Exception as exc:  # noqa: BLE001 - retry boundary
                    error = f"{type(exc).__name__}: {exc}"
                    if isinstance(exc, WatchdogError) and self._poison_exhausted(
                        run.run_id
                    ):
                        self._quarantine(run, error, tracker, result)
                        break
                    if attempt >= self.max_attempts:
                        tracker.emit(
                            FAILED, run.run_id, run.label,
                            attempt=attempt, error=error,
                        )
                        result.failures.append(
                            RunFailure(run.run_id, run.label, attempt, error)
                        )
                        break
                    tracker.emit(
                        RETRY, run.run_id, run.label,
                        attempt=attempt, error=error,
                    )
                    self._sleep(self._backoff_delay(attempt))
                    continue
                result.results[run.run_id] = self._record(run, payload, attempt)
                tracker.emit(COMPLETED, run.run_id, run.label, attempt=attempt)
                break

    # ------------------------------------------------------------------
    # Parallel executor
    # ------------------------------------------------------------------
    def _run_parallel(
        self,
        pending: Sequence[RunSpec],
        tracker: ProgressTracker,
        result: CampaignResult,
    ) -> None:
        #: (run, attempt, not-before timestamp) waiting for a slot.
        queue: deque[tuple[RunSpec, int, float]] = deque(
            (run, 1, 0.0) for run in pending
        )
        inflight: dict[Future, tuple[RunSpec, int, float]] = {}
        paused = False
        pool = _make_pool(self.workers)
        try:
            while queue or inflight:
                if _suspend.suspend_requested():
                    self._shutdown_parallel(pool, inflight, tracker, result)
                    _suspend.reset()
                    return
                now = self._clock()
                paused = self._dispatch_paused(
                    tracker, list(pool._processes or ()), paused
                )
                # Top up the pool: at most `workers` runs in flight so
                # per-run deadlines start ticking at true start time.
                requeued: list[tuple[RunSpec, int, float]] = []
                submit_broken = False
                while queue and len(inflight) < self.workers and not paused:
                    run, attempt, ready_at = queue.popleft()
                    if ready_at > now:
                        requeued.append((run, attempt, ready_at))
                        continue
                    try:
                        future = pool.submit(self.entry, run.params)
                    except BrokenProcessPool:
                        # A worker crash can surface at submit time,
                        # before any in-flight future reports it.  The
                        # submitted run is blameless: requeue it without
                        # an attempt penalty and rebuild below.
                        requeued.append((run, attempt, 0.0))
                        submit_broken = True
                        break
                    deadline = (
                        now + self.timeout if self.timeout is not None
                        else float("inf")
                    )
                    inflight[future] = (run, attempt, deadline)
                    self._run_started.setdefault(run.run_id, now)
                    if attempt == 1:
                        tracker.emit(STARTED, run.run_id, run.label)
                queue.extend(requeued)
                if submit_broken and not inflight:
                    # Crash with nothing to harvest: rebuild right away
                    # (the dead pool joins quickly).
                    pool.shutdown(wait=True, cancel_futures=True)
                    pool = _make_pool(self.workers)
                    continue
                if not inflight:
                    if paused:
                        # Disk backpressure with nothing in flight: wait
                        # a guard poll out (suspension checked on re-entry).
                        self._sleep(self.guards.poll_interval_s or 0.1)
                        continue
                    # Everything queued is backing off; sleep it out.
                    next_ready = min(ready for _, _, ready in queue)
                    self._sleep(max(next_ready - now, 0.0))
                    continue
                wait_budget = self._wait_budget(inflight, queue, now)
                done, _ = wait(
                    set(inflight), timeout=wait_budget,
                    return_when=FIRST_COMPLETED,
                )
                pool_broken = submit_broken
                for future in done:
                    run, attempt, _ = inflight.pop(future)
                    try:
                        payload = future.result()
                    except SuspendRequested as exc:
                        # The parent's flag is clear (shutdown is handled
                        # at the loop top), so this is a guard shed: the
                        # worker checkpointed the run and stays in the
                        # pool.  Re-queue with no attempt penalty; the
                        # resubmission resumes from the snapshot.
                        self._shed_pids.clear()
                        self._resume_counts[run.run_id] = (
                            self._resume_counts.get(run.run_id, 0) + 1
                        )
                        tracker.emit(
                            RETRY, run.run_id, run.label,
                            attempt=attempt, error=f"shed: {exc}",
                        )
                        queue.append((run, attempt, 0.0))
                    except BrokenProcessPool as exc:
                        pool_broken = True
                        self._retry_or_fail(
                            run, attempt,
                            f"worker crashed ({type(exc).__name__})",
                            queue, tracker, result, poison=True,
                        )
                    except Exception as exc:  # noqa: BLE001 - retry boundary
                        self._retry_or_fail(
                            run, attempt, f"{type(exc).__name__}: {exc}",
                            queue, tracker, result,
                            poison=isinstance(exc, WatchdogError),
                        )
                    else:
                        result.results[run.run_id] = self._record(
                            run, payload, attempt
                        )
                        tracker.emit(
                            COMPLETED, run.run_id, run.label, attempt=attempt
                        )
                # Enforce per-run deadlines on whatever is still out.
                now = self._clock()
                expired = [
                    future
                    for future, (_, _, deadline) in inflight.items()
                    if now >= deadline
                ]
                if expired:
                    for future in expired:
                        run, attempt, _ = inflight.pop(future)
                        future.cancel()
                        self._retry_or_fail(
                            run, attempt,
                            f"timed out after {self.timeout:.1f}s",
                            queue, tracker, result, poison=True,
                        )
                    # The expired task is still running inside a worker;
                    # only a pool teardown reclaims the slot.  Collateral
                    # runs are re-queued with no attempt penalty.
                    pool_broken = True
                if pool_broken:
                    for future, (run, attempt, _) in inflight.items():
                        future.cancel()
                        if future.done() and future.exception() is None:
                            payload = future.result()
                            result.results[run.run_id] = self._record(
                                run, payload, attempt
                            )
                            tracker.emit(
                                COMPLETED, run.run_id, run.label, attempt=attempt
                            )
                        else:
                            queue.append((run, attempt, 0.0))
                    inflight.clear()
                    # Join crashed pools (their workers are already dead,
                    # so this is quick and avoids interpreter-shutdown
                    # races); never join a pool whose worker is stuck in
                    # a timed-out task.
                    pool.shutdown(wait=not expired, cancel_futures=True)
                    pool = _make_pool(self.workers)
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown(wait=True, cancel_futures=True)

    def _shutdown_parallel(
        self,
        pool: ProcessPoolExecutor,
        inflight: dict[Future, tuple[RunSpec, int, float]],
        tracker: ProgressTracker,
        result: CampaignResult,
    ) -> None:
        """Graceful shutdown: checkpoint in-flight workers, park runs.

        Every worker is SIGTERMed (covering signals delivered only to
        this process, not the group), then given ``suspend_grace``
        seconds to finish or checkpoint.  Completed runs are recorded
        normally; suspended and abandoned runs land in
        :attr:`CampaignResult.suspended`.  Queued runs need no
        bookkeeping — their results are simply missing, which is what
        ``repro resume`` executes.
        """
        result.interrupted = True
        for pid in list(pool._processes or ()):
            try:
                self._kill(pid, signal.SIGTERM)
            except (OSError, ProcessLookupError):
                pass
        done, not_done = wait(set(inflight), timeout=self.suspend_grace)
        for future in done:
            run, attempt, _ = inflight.pop(future)
            try:
                payload = future.result()
            except SuspendRequested as exc:
                self._park(
                    run, tracker, result,
                    snapshot=exc.snapshot_path, note=str(exc),
                )
            except BaseException as exc:  # noqa: BLE001 - shutdown boundary
                # A crash racing the shutdown; no retry machinery now —
                # park it (resume restarts it, from a periodic snapshot
                # if one exists).
                self._park(
                    run, tracker, result,
                    note=f"{type(exc).__name__}: {exc}",
                )
            else:
                result.results[run.run_id] = self._record(run, payload, attempt)
                tracker.emit(COMPLETED, run.run_id, run.label, attempt=attempt)
        for future in not_done:
            run, _, _ = inflight.pop(future)
            future.cancel()
            self._park(
                run, tracker, result,
                note=f"did not checkpoint within {self.suspend_grace:.0f}s grace",
            )
        inflight.clear()
        # Never block on workers that may be mid-snapshot or wedged.
        pool.shutdown(wait=False, cancel_futures=True)

    def _wait_budget(
        self,
        inflight: Mapping[Future, tuple[RunSpec, int, float]],
        queue: Sequence[tuple[RunSpec, int, float]],
        now: float,
    ) -> float | None:
        """How long `wait` may block before bookkeeping must run."""
        bounds = [
            deadline for _, _, deadline in inflight.values()
            if deadline != float("inf")
        ]
        bounds.extend(ready for _, _, ready in queue if ready > now)
        if (
            self.snapshot_dir is not None
            or self.guards is not None
            or self.install_signal_handlers
        ):
            # Preemption armed: wake regularly so the suspend flag and
            # the guards are polled even while every future is busy.
            bounds.append(now + 0.25)
        if not bounds:
            return None
        return max(min(bounds) - now, 0.01)

    def _retry_or_fail(
        self,
        run: RunSpec,
        attempt: int,
        error: str,
        queue: deque,
        tracker: ProgressTracker,
        result: CampaignResult,
        poison: bool = False,
    ) -> None:
        if poison and self._poison_exhausted(run.run_id):
            self._quarantine(run, error, tracker, result)
            return
        if attempt >= self.max_attempts:
            tracker.emit(
                FAILED, run.run_id, run.label, attempt=attempt, error=error
            )
            result.failures.append(
                RunFailure(run.run_id, run.label, attempt, error)
            )
            return
        tracker.emit(RETRY, run.run_id, run.label, attempt=attempt, error=error)
        if self.snapshot_dir is not None and snapshot_path_for(
            self.snapshot_dir, run.run_id
        ).is_file():
            # The retry will restore from this snapshot, not start over.
            self._resume_counts[run.run_id] = (
                self._resume_counts.get(run.run_id, 0) + 1
            )
        ready_at = self._clock() + self._backoff_delay(attempt)
        queue.append((run, attempt + 1, ready_at))
