"""On-disk artifact store for campaign results.

One JSON document per run id, written via temp-file +
:func:`os.replace` so a result file either exists complete or not at
all — a crashed or killed campaign never leaves a partial JSON behind.
That single invariant buys the two headline features for free:

* **caching** — a completed run is skipped by every later campaign
  that contains the same run id;
* **resume** — re-running an interrupted campaign executes only the
  runs whose files are missing.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from repro.errors import ConfigError

#: Schema version stamped into every result file, so a future format
#: change can invalidate stale caches instead of misreading them.
STORE_VERSION = 1


class ResultStore:
    """Directory of ``<run_id>.json`` result records."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def path_for(self, run_id: str) -> Path:
        if not run_id or "/" in run_id or run_id.startswith("."):
            raise ConfigError(f"invalid run id {run_id!r}")
        return self.root / f"{run_id}.json"

    def has(self, run_id: str) -> bool:
        return self.path_for(run_id).exists()

    def save(self, run_id: str, record: Mapping[str, object]) -> Path:
        """Atomically persist *record* as the result of *run_id*.

        The document is first written to a temp file in the same
        directory (same filesystem, so the final rename is atomic),
        fsynced, then moved into place.  A crash at any point leaves
        either the old state or the complete new file — never a
        truncated one.
        """
        final = self.path_for(run_id)
        payload = dict(record)
        payload.setdefault("store_version", STORE_VERSION)
        data = json.dumps(payload, sort_keys=True, indent=1)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{run_id}-", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, final)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return final

    def load(self, run_id: str) -> dict[str, object]:
        path = self.path_for(run_id)
        with path.open("r", encoding="utf-8") as handle:
            return json.load(handle)

    def delete(self, run_id: str) -> bool:
        """Drop a cached result (forces re-execution); returns whether
        anything was removed."""
        try:
            self.path_for(run_id).unlink()
            return True
        except FileNotFoundError:
            return False

    # ------------------------------------------------------------------
    def completed_ids(self) -> set[str]:
        """Run ids with a (complete) result on disk."""
        return {
            path.stem
            for path in self.root.glob("*.json")
            if not path.name.startswith(".")
        }

    def __len__(self) -> int:
        return len(self.completed_ids())

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self.completed_ids()))

    # ------------------------------------------------------------------
    def export_jsonl(
        self, path: str | Path, run_ids: Sequence[str] | None = None
    ) -> int:
        """Write one result record per line to *path* (atomic).

        With *run_ids* given, exports exactly those runs in that order
        (missing ones are skipped); otherwise every stored record in
        sorted-id order.  Returns the number of lines written.
        """
        ids = list(run_ids) if run_ids is not None else sorted(self.completed_ids())
        lines = []
        for run_id in ids:
            if self.has(run_id):
                record = self.load(run_id)
                lines.append(json.dumps(record, sort_keys=True))
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=".results-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + ("\n" if lines else ""))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return len(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r}, results={len(self)})"
