"""On-disk artifact store for campaign results.

One JSON document per run id, written via temp-file +
:func:`os.replace` so a result file either exists complete or not at
all — a crashed or killed campaign never leaves a partial JSON behind.
That single invariant buys the two headline features for free:

* **caching** — a completed run is skipped by every later campaign
  that contains the same run id;
* **resume** — re-running an interrupted campaign executes only the
  runs whose files are missing.

Two shared-store coordination pieces live here too:

* :class:`StoreLock` — advisory ``flock`` on ``<store>/.lock`` so two
  concurrent campaigns cannot interleave writes into one store (the
  second fails fast with a clear error instead of corrupting caches);
* a hidden ``.campaign.json`` **manifest** recording the spec and
  settings of the campaign that owns the store, which is what lets
  ``repro resume <store>`` restart a suspended campaign without the
  original command line.  The leading dot keeps both files out of
  :meth:`ResultStore.completed_ids`.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from repro.errors import ConfigError

try:  # pragma: no cover - import guard exercised only off-POSIX
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

#: Schema version stamped into every result file, so a future format
#: change can invalidate stale caches instead of misreading them.
STORE_VERSION = 1

#: Advisory lock file guarding a store against concurrent campaigns.
LOCK_NAME = ".lock"

#: Campaign manifest recorded next to the results (hidden, see above).
MANIFEST_NAME = ".campaign.json"


class StoreLock:
    """Advisory exclusive lock on a result store directory.

    Uses ``fcntl.flock(LOCK_EX | LOCK_NB)`` on ``<store>/.lock``: the
    kernel releases the lock automatically when the holder exits, so a
    SIGKILLed campaign never leaves a stale lock behind.  On platforms
    without :mod:`fcntl` the lock degrades to a no-op (advisory
    locking is a POSIX nicety, not a correctness requirement for
    single-campaign use).

    Usable as a context manager; :meth:`acquire` raises
    :class:`~repro.errors.ConfigError` when another campaign holds the
    lock, naming the holder's pid when readable.
    """

    def __init__(self, root: str | Path) -> None:
        self.path = Path(root) / LOCK_NAME
        self._handle = None

    @property
    def held(self) -> bool:
        return self._handle is not None

    def acquire(self) -> "StoreLock":
        if self._handle is not None:
            return self  # idempotent: one process, one lock
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            return self
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle = self.path.open("a+", encoding="ascii")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            holder = ""
            try:
                handle.seek(0)
                pid = handle.read(32).strip()
                if pid:
                    holder = f" (held by pid {pid})"
            except OSError:
                pass
            handle.close()
            raise ConfigError(
                f"result store {str(self.path.parent)!r} is locked by "
                f"another campaign{holder}; wait for it to finish or "
                f"use a different --store"
            ) from None
        # Lock held: advertise ourselves for the error message above.
        try:
            handle.seek(0)
            handle.truncate()
            handle.write(f"{os.getpid()}\n")
            handle.flush()
        except OSError:
            pass  # cosmetic only
        self._handle = handle
        return self

    def release(self) -> None:
        if self._handle is None:
            return
        try:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
        except OSError:
            pass
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "StoreLock":
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class ResultStore:
    """Directory of ``<run_id>.json`` result records."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def path_for(self, run_id: str) -> Path:
        if not run_id or "/" in run_id or run_id.startswith("."):
            raise ConfigError(f"invalid run id {run_id!r}")
        return self.root / f"{run_id}.json"

    def has(self, run_id: str) -> bool:
        return self.path_for(run_id).exists()

    def save(self, run_id: str, record: Mapping[str, object]) -> Path:
        """Atomically persist *record* as the result of *run_id*.

        The document is first written to a temp file in the same
        directory (same filesystem, so the final rename is atomic),
        fsynced, then moved into place.  A crash at any point leaves
        either the old state or the complete new file — never a
        truncated one.
        """
        final = self.path_for(run_id)
        payload = dict(record)
        payload.setdefault("store_version", STORE_VERSION)
        data = json.dumps(payload, sort_keys=True, indent=1)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{run_id}-", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, final)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return final

    def load(self, run_id: str) -> dict[str, object]:
        path = self.path_for(run_id)
        with path.open("r", encoding="utf-8") as handle:
            return json.load(handle)

    def delete(self, run_id: str) -> bool:
        """Drop a cached result (forces re-execution); returns whether
        anything was removed."""
        try:
            self.path_for(run_id).unlink()
            return True
        except FileNotFoundError:
            return False

    # ------------------------------------------------------------------
    def lock(self) -> StoreLock:
        """Advisory exclusive lock for this store (not yet acquired)."""
        return StoreLock(self.root)

    def write_manifest(self, manifest: Mapping[str, object]) -> Path:
        """Atomically record the owning campaign's spec and settings
        (hidden file, excluded from :meth:`completed_ids`)."""
        path = self.root / MANIFEST_NAME
        data = json.dumps(dict(manifest), sort_keys=True, indent=1)
        fd, tmp_name = tempfile.mkstemp(
            prefix=".manifest-", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def read_manifest(self) -> dict[str, object]:
        """Load the campaign manifest; raises
        :class:`~repro.errors.ConfigError` when the store has none
        (e.g. it predates manifests or is not a campaign store)."""
        path = self.root / MANIFEST_NAME
        try:
            with path.open("r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            raise ConfigError(
                f"store {str(self.root)!r} has no campaign manifest "
                f"({MANIFEST_NAME}); run `repro campaign` against it "
                f"once to create one"
            ) from None
        except json.JSONDecodeError as exc:
            raise ConfigError(
                f"store manifest {str(path)!r} is unreadable: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def completed_ids(self) -> set[str]:
        """Run ids with a (complete) result on disk."""
        return {
            path.stem
            for path in self.root.glob("*.json")
            if not path.name.startswith(".")
        }

    def __len__(self) -> int:
        return len(self.completed_ids())

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self.completed_ids()))

    # ------------------------------------------------------------------
    def export_jsonl(
        self, path: str | Path, run_ids: Sequence[str] | None = None
    ) -> int:
        """Write one result record per line to *path* (atomic).

        With *run_ids* given, exports exactly those runs in that order
        (missing ones are skipped); otherwise every stored record in
        sorted-id order.  Returns the number of lines written.
        """
        ids = list(run_ids) if run_ids is not None else sorted(self.completed_ids())
        lines = []
        for run_id in ids:
            if self.has(run_id):
                record = self.load(run_id)
                lines.append(json.dumps(record, sort_keys=True))
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=".results-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + ("\n" if lines else ""))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return len(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r}, results={len(self)})"
