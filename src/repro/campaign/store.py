"""On-disk artifact store for campaign results.

One JSON document per run id, written via temp-file +
:func:`os.replace` so a result file either exists complete or not at
all — a crashed or killed campaign never leaves a partial JSON behind.
That single invariant buys the two headline features for free:

* **caching** — a completed run is skipped by every later campaign
  that contains the same run id;
* **resume** — re-running an interrupted campaign executes only the
  runs whose files are missing.

Two shared-store coordination pieces live here too:

* :class:`StoreLock` — advisory ``flock`` on ``<store>/.lock`` so two
  concurrent campaigns cannot interleave writes into one store (the
  second fails fast with a clear error instead of corrupting caches);
* a hidden ``.campaign.json`` **manifest** recording the spec and
  settings of the campaign that owns the store, which is what lets
  ``repro resume <store>`` restart a suspended campaign without the
  original command line.  The leading dot keeps both files out of
  :meth:`ResultStore.completed_ids`.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import time
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from repro.errors import ConfigError
from repro.faultinject import failpoint, failpoint_write, with_io_retries

try:  # pragma: no cover - import guard exercised only off-POSIX
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

log = logging.getLogger("repro.campaign.store")

#: Schema version stamped into every result file, so a future format
#: change can invalidate stale caches instead of misreading them.
STORE_VERSION = 1

#: Advisory lock file guarding a store against concurrent campaigns.
LOCK_NAME = ".lock"

#: Campaign manifest recorded next to the results (hidden, see above).
MANIFEST_NAME = ".campaign.json"

#: How long :meth:`StoreLock.acquire` keeps polling a lock whose
#: recorded holder pid is dead.  flock is held by the *open-file
#: description*, which a hard-killed campaign's forked pool workers
#: share; they drop it within a moment of noticing the broken work
#: queue, so a short grace window suffices.  A *live* holder never
#: waits — only a dead one.
STALE_LOCK_GRACE_S = 5.0

#: Poll interval while waiting out a dead holder's descendants.
STALE_LOCK_POLL_S = 0.1


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe; unknown states count as alive."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # e.g. EPERM: someone else's live process
    return True


def _local_host() -> str:
    import socket

    return socket.gethostname()


class StoreLock:
    """Advisory lock on a result store directory.

    Uses ``fcntl.flock`` on ``<store>/.lock`` — exclusive
    (``LOCK_EX``) for a campaign that owns the whole store, or shared
    (``LOCK_SH``, ``shared=True``) for cooperating queue workers that
    must exclude an exclusive campaign without excluding each other.
    The kernel releases the lock automatically when the holder exits,
    so a SIGKILLed campaign never leaves a stale lock behind.  When
    the flock *is* still held but the recorded holder pid is dead,
    the holder's descendants are keeping the shared open-file
    description alive — a hard-killed campaign's pool workers do
    exactly this for the moment it takes them to notice the broken
    queue — so the lock is reclaimed by polling for a bounded grace
    period (with a warning log line) before giving up; a *live*
    holder still fails fast.

    The lock file records ``"<pid> <host>"`` so a recycled pid on
    *another* machine (a store on shared storage) is never mistaken
    for a live local holder: the flock path only applies the
    dead-holder reclaim when the recorded host is this machine, and
    the ``O_EXCL`` pid-file fallback (platforms without :mod:`fcntl`)
    treats a foreign-host record as stale outright — a local
    ``os.kill(pid, 0)`` probe says nothing about a pid on another
    host, and the pid file (unlike flock) has no kernel to clean it
    up.  Pid-only lock files from older versions still parse.

    Usable as a context manager; :meth:`acquire` raises
    :class:`~repro.errors.ConfigError` when another campaign holds
    the lock, naming the holder's pid (and host) when readable.
    """

    def __init__(self, root: str | Path, *, shared: bool = False) -> None:
        self.path = Path(root) / LOCK_NAME
        self.shared = shared
        self._handle = None
        self._pidfile_held = False

    @property
    def held(self) -> bool:
        return self._handle is not None or self._pidfile_held

    def acquire(self) -> "StoreLock":
        if self.held:
            return self  # idempotent: one process, one lock
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            return self._acquire_pidfile()
        mode = fcntl.LOCK_SH if self.shared else fcntl.LOCK_EX
        deadline: float | None = None
        while True:
            handle = self.path.open("a+", encoding="ascii")
            try:
                fcntl.flock(handle.fileno(), mode | fcntl.LOCK_NB)
                break
            except OSError:
                pid, host = self._read_holder(handle)
                handle.close()
                local = host is None or host == _local_host()
                if pid is not None and local and not _pid_alive(pid):
                    # The flock outlives a dead holder only while its
                    # descendants keep the shared open-file description
                    # alive (pool workers of a hard-killed campaign);
                    # poll briefly for them to exit.  Only meaningful
                    # when the recorded holder was on *this* host — a
                    # local pid probe says nothing about a foreign one.
                    now = time.monotonic()
                    if deadline is None:
                        log.warning(
                            "store %s: lock holder pid %d is dead; "
                            "reclaiming stale lock",
                            self.path.parent, pid,
                        )
                        deadline = now + STALE_LOCK_GRACE_S
                    if now < deadline:
                        time.sleep(STALE_LOCK_POLL_S)
                        continue
                holder = ""
                if pid is not None:
                    at = f"@{host}" if host else ""
                    holder = f" (held by pid {pid}{at})"
                raise ConfigError(
                    f"result store {str(self.path.parent)!r} is locked by "
                    f"another campaign{holder}; wait for it to finish or "
                    f"use a different --store"
                ) from None
        if self.shared:
            # Shared holders do not advertise: concurrent writers would
            # race, and the pid recorded here is only an error-message
            # hint about the (single) exclusive owner.
            self._handle = handle
            return self
        # Lock held: advertise ourselves for the error message above.
        try:
            handle.seek(0)
            handle.truncate()
            handle.write(f"{os.getpid()} {_local_host()}\n")
            handle.flush()
        except OSError:
            pass  # cosmetic only
        self._handle = handle
        return self

    def _read_holder(self, handle) -> tuple[int | None, str | None]:
        """Recorded ``(pid, host)``; host is ``None`` for pid-only
        files written by older versions."""
        try:
            handle.seek(0)
            text = handle.read(256).strip()
        except OSError:
            return None, None
        parts = text.split()
        if not parts:
            return None, None
        try:
            pid = int(parts[0])
        except ValueError:
            return None, None
        return pid, (parts[1] if len(parts) > 1 else None)

    def _acquire_pidfile(self) -> "StoreLock":
        """Fallback locking without flock: ``O_EXCL`` pid file."""
        if self.shared:
            # O_EXCL cannot express a shared claim; the fallback
            # degrades to unlocked for cooperating queue workers (the
            # per-run lease files still provide mutual exclusion).
            self._pidfile_held = False
            return self
        for attempt in (1, 2):
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                pid: int | None = None
                host: str | None = None
                try:
                    parts = self.path.read_text("ascii").split()
                    pid = int(parts[0])
                    host = parts[1] if len(parts) > 1 else None
                except (OSError, ValueError, IndexError):
                    pass
                foreign = host is not None and host != _local_host()
                dead = (
                    pid is not None and not foreign and not _pid_alive(pid)
                )
                if attempt == 1 and pid is not None and (dead or foreign):
                    # A foreign-host record is stale by definition
                    # here: without flock there is no kernel holding a
                    # lease for it, and probing a *local* pid that
                    # happens to be recycled must never resurrect it.
                    why = (
                        f"holder pid {pid} is dead"
                        if dead
                        else f"holder pid {pid} lives on {host!r}, not here"
                    )
                    log.warning(
                        "store %s: lock %s; reclaiming stale lock",
                        self.path.parent, why,
                    )
                    try:
                        self.path.unlink()
                    except FileNotFoundError:
                        pass
                    continue
                holder = ""
                if pid is not None:
                    at = f"@{host}" if host else ""
                    holder = f" (held by pid {pid}{at})"
                raise ConfigError(
                    f"result store {str(self.path.parent)!r} is locked by "
                    f"another campaign{holder}; wait for it to finish or "
                    f"use a different --store"
                ) from None
            try:
                os.write(
                    fd, f"{os.getpid()} {_local_host()}\n".encode("ascii")
                )
            finally:
                os.close(fd)
            self._pidfile_held = True
            return self
        raise AssertionError("unreachable")  # pragma: no cover

    def release(self) -> None:
        if self._pidfile_held:
            try:
                self.path.unlink()
            except OSError:
                pass
            self._pidfile_held = False
            return
        if self._handle is None:
            return
        try:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
        except OSError:
            pass
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "StoreLock":
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class ResultStore:
    """Directory of ``<run_id>.json`` result records."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def path_for(self, run_id: str) -> Path:
        if not run_id or "/" in run_id or run_id.startswith("."):
            raise ConfigError(f"invalid run id {run_id!r}")
        return self.root / f"{run_id}.json"

    def has(self, run_id: str) -> bool:
        return self.path_for(run_id).exists()

    def save(self, run_id: str, record: Mapping[str, object]) -> Path:
        """Atomically persist *record* as the result of *run_id*.

        The document is first written to a temp file in the same
        directory (same filesystem, so the final rename is atomic),
        fsynced, then moved into place.  A crash at any point leaves
        either the old state or the complete new file — never a
        truncated one.  Transient I/O errors (spurious EIO, ENOSPC
        racing a cleanup) are retried with bounded backoff; each
        attempt starts from a fresh temp file.
        """
        final = self.path_for(run_id)
        payload = dict(record)
        payload.setdefault("store_version", STORE_VERSION)
        data = json.dumps(payload, sort_keys=True, indent=1).encode("utf-8")

        def _attempt() -> Path:
            fd, tmp_name = tempfile.mkstemp(
                prefix=f".{run_id}-", suffix=".tmp", dir=self.root
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    failpoint_write("store.result.write", handle, data)
                    handle.flush()
                    os.fsync(handle.fileno())
                failpoint("store.result.rename")
                os.replace(tmp_name, final)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            return final

        return with_io_retries(_attempt)

    def load(self, run_id: str) -> dict[str, object]:
        path = self.path_for(run_id)
        with path.open("r", encoding="utf-8") as handle:
            return json.load(handle)

    def delete(self, run_id: str) -> bool:
        """Drop a cached result (forces re-execution); returns whether
        anything was removed."""
        try:
            self.path_for(run_id).unlink()
            return True
        except FileNotFoundError:
            return False

    # ------------------------------------------------------------------
    def lock(self, *, shared: bool = False) -> StoreLock:
        """Advisory lock for this store (not yet acquired); pass
        ``shared=True`` for a cooperating queue worker's claim."""
        return StoreLock(self.root, shared=shared)

    def write_manifest(self, manifest: Mapping[str, object]) -> Path:
        """Atomically record the owning campaign's spec and settings
        (hidden file, excluded from :meth:`completed_ids`)."""
        path = self.root / MANIFEST_NAME
        data = json.dumps(dict(manifest), sort_keys=True, indent=1).encode(
            "utf-8"
        )

        def _attempt() -> Path:
            fd, tmp_name = tempfile.mkstemp(
                prefix=".manifest-", suffix=".tmp", dir=self.root
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    failpoint_write("store.manifest.write", handle, data)
                    handle.flush()
                    os.fsync(handle.fileno())
                failpoint("store.manifest.rename")
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            return path

        return with_io_retries(_attempt)

    def read_manifest(self) -> dict[str, object]:
        """Load the campaign manifest; raises
        :class:`~repro.errors.ConfigError` when the store has none
        (e.g. it predates manifests or is not a campaign store)."""
        path = self.root / MANIFEST_NAME
        try:
            with path.open("r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise ConfigError(
                f"store {str(self.root)!r} has no campaign manifest "
                f"({MANIFEST_NAME}); run `repro campaign` against it "
                f"once to create one"
            ) from None
        except json.JSONDecodeError as exc:
            raise ConfigError(
                f"store manifest {str(path)!r} is unreadable: {exc}"
            ) from exc
        except OSError as exc:
            # Permission problems, I/O errors, a directory squatting on
            # the manifest name — a clean ConfigError (and exit 2 from
            # the CLI), never a traceback.
            raise ConfigError(
                f"store manifest {str(path)!r} is unreadable: {exc}"
            ) from exc
        if not isinstance(manifest, dict):
            raise ConfigError(
                f"store manifest {str(path)!r} is malformed: expected a "
                f"JSON object, got {type(manifest).__name__}"
            )
        return manifest

    # ------------------------------------------------------------------
    def completed_ids(self) -> set[str]:
        """Run ids with a (complete) result on disk."""
        return {
            path.stem
            for path in self.root.glob("*.json")
            if not path.name.startswith(".")
        }

    def __len__(self) -> int:
        return len(self.completed_ids())

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self.completed_ids()))

    # ------------------------------------------------------------------
    def export_jsonl(
        self, path: str | Path, run_ids: Sequence[str] | None = None
    ) -> int:
        """Write one result record per line to *path* (atomic).

        With *run_ids* given, exports exactly those runs in that order
        (missing ones are skipped); otherwise every stored record in
        sorted-id order.  Returns the number of lines written.
        """
        ids = list(run_ids) if run_ids is not None else sorted(self.completed_ids())
        lines = []
        for run_id in ids:
            if self.has(run_id):
                record = self.load(run_id)
                lines.append(json.dumps(record, sort_keys=True))
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = ("\n".join(lines) + ("\n" if lines else "")).encode("utf-8")
        fd, tmp_name = tempfile.mkstemp(
            prefix=".results-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                failpoint_write("store.jsonl.write", handle, data)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return len(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r}, results={len(self)})"
