"""NERSC Trinity-inspired mini-application models (substrate S7).

The paper evaluates with real executions of the NERSC Trinity
procurement mini-apps.  Offline, those runs contribute two things to
the scheduling study: (1) per-app resource profiles that determine
co-run compatibility, and (2) realistic runtimes at various node
counts.  This package supplies both analytically: calibrated
:class:`~repro.interference.profile.ResourceProfile` s and a
weak-scaling runtime model.
"""

from repro.miniapps.base import MiniApp
from repro.miniapps.nas import NAS_SUITE, get_nas_app, nas_profiles
from repro.miniapps.scaling import strong_scaling_efficiency, weak_scaling_runtime
from repro.miniapps.suite import TRINITY_SUITE, get_miniapp, suite_names

__all__ = [
    "MiniApp",
    "NAS_SUITE",
    "TRINITY_SUITE",
    "get_miniapp",
    "get_nas_app",
    "nas_profiles",
    "suite_names",
    "strong_scaling_efficiency",
    "weak_scaling_runtime",
]
