"""The mini-application abstraction."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.interference.profile import ResourceProfile
from repro.miniapps.scaling import weak_scaling_runtime


@dataclass(frozen=True)
class MiniApp:
    """A parameterised analytic model of one scientific mini-app.

    Attributes
    ----------
    name:
        Suite name (e.g. ``"miniFE"``).
    profile:
        Node-local resource profile driving co-run interference.
    base_runtime:
        Reference single-node runtime of the canonical problem size,
        in seconds.
    shareable:
        Whether users of this app typically submit with sharing
        enabled (cf. ``--oversubscribe``).  Compute-bound codes whose
        owners fear interference default to ``False``.
    memory_mb_per_node:
        Typical per-node resident-set size at the canonical problem
        scale; the workload generator scales it with problem size.
        0 means "small enough to ignore".
    typical_nodes:
        Node counts at which campaigns usually run this app; the
        workload generator samples from these.
    description:
        One-line science description for reports.
    """

    name: str
    profile: ResourceProfile
    base_runtime: float
    shareable: bool = True
    typical_nodes: tuple[int, ...] = (1, 2, 4, 8)
    description: str = ""
    memory_mb_per_node: float = 0.0

    def __post_init__(self) -> None:
        if self.base_runtime <= 0:
            raise ConfigError(f"{self.name}: base_runtime must be positive")
        if not self.typical_nodes or any(n <= 0 for n in self.typical_nodes):
            raise ConfigError(f"{self.name}: typical_nodes must be positive")
        if self.profile.name != self.name:
            raise ConfigError(
                f"mini-app {self.name!r} wraps profile named "
                f"{self.profile.name!r}; names must match"
            )

    def runtime(self, num_nodes: int, work_scale: float = 1.0) -> float:
        """Predicted exclusive-allocation runtime on *num_nodes* nodes.

        The suite weak-scales: per-node work is constant, so runtime is
        flat in node count apart from a communication term that grows
        logarithmically with scale.  ``work_scale`` varies the problem
        size between submissions of the same app.
        """
        return weak_scaling_runtime(
            base_runtime=self.base_runtime * work_scale,
            num_nodes=num_nodes,
            comm_fraction=self.profile.comm_fraction,
        )

    def __str__(self) -> str:
        return f"{self.name} [{self.profile.dominant_resource}-dominant]"
