"""NAS Parallel Benchmarks-inspired application models.

An alternative suite to the Trinity set, with the NPB kernels'
well-known resource characters: EP is purely compute-bound, CG and MG
hammer the memory system, FT and IS mix memory with heavy
communication, BT/SP/LU are balanced pseudo-applications.  Useful for
checking that the node-sharing results are a property of *workload
diversity*, not of one particular suite — and as a second ready-made
app set for library users.

Usage::

    from repro.miniapps.nas import NAS_SUITE
    from repro.workload.trinity import TrinityWorkloadGenerator

    gen = TrinityWorkloadGenerator(apps=tuple(NAS_SUITE.values()))
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.interference.profile import ResourceProfile
from repro.miniapps.base import MiniApp


def _app(
    name: str,
    core: float,
    membw: float,
    cache: float,
    comm: float,
    serial: float,
    base_runtime: float,
    shareable: bool,
    typical_nodes: tuple[int, ...],
    description: str,
) -> MiniApp:
    return MiniApp(
        name=name,
        profile=ResourceProfile(
            name=name,
            core_demand=core,
            membw_demand=membw,
            cache_footprint=cache,
            comm_fraction=comm,
            serial_fraction=serial,
        ),
        base_runtime=base_runtime,
        shareable=shareable,
        typical_nodes=typical_nodes,
        description=description,
    )


#: NPB-inspired suite, keyed by kernel name.
NAS_SUITE: dict[str, MiniApp] = {
    app.name: app
    for app in (
        _app(
            "BT",
            core=0.70, membw=0.60, cache=0.50, comm=0.20, serial=0.02,
            base_runtime=3000.0, shareable=True,
            typical_nodes=(4, 9, 16, 25),  # BT wants square counts
            description="block-tridiagonal CFD pseudo-application",
        ),
        _app(
            "CG",
            core=0.40, membw=0.90, cache=0.60, comm=0.25, serial=0.01,
            base_runtime=1200.0, shareable=True,
            typical_nodes=(2, 4, 8, 16),
            description="conjugate gradient, irregular memory access",
        ),
        _app(
            "EP",
            core=0.95, membw=0.10, cache=0.10, comm=0.02, serial=0.0,
            base_runtime=900.0, shareable=True,
            typical_nodes=(1, 2, 4, 8, 16),
            description="embarrassingly parallel random-number kernel",
        ),
        _app(
            "FT",
            core=0.60, membw=0.75, cache=0.45, comm=0.40, serial=0.02,
            base_runtime=1800.0, shareable=True,
            typical_nodes=(2, 4, 8, 16),
            description="3-D FFT spectral kernel, all-to-all heavy",
        ),
        _app(
            "IS",
            core=0.35, membw=0.85, cache=0.40, comm=0.35, serial=0.01,
            base_runtime=600.0, shareable=True,
            typical_nodes=(1, 2, 4, 8),
            description="integer bucket sort, bandwidth and all-to-all",
        ),
        _app(
            "LU",
            core=0.75, membw=0.55, cache=0.50, comm=0.15, serial=0.03,
            base_runtime=2700.0, shareable=True,
            typical_nodes=(4, 8, 16, 32),
            description="SSOR solver pseudo-application, wavefront sweeps",
        ),
        _app(
            "MG",
            core=0.45, membw=0.88, cache=0.55, comm=0.25, serial=0.02,
            base_runtime=1500.0, shareable=True,
            typical_nodes=(2, 4, 8, 16),
            description="V-cycle multigrid, bandwidth bound",
        ),
        _app(
            "SP",
            core=0.65, membw=0.65, cache=0.50, comm=0.20, serial=0.02,
            base_runtime=3300.0, shareable=True,
            typical_nodes=(4, 9, 16, 25),
            description="scalar-pentadiagonal CFD pseudo-application",
        ),
    )
}


def nas_profiles() -> tuple[ResourceProfile, ...]:
    """All NPB-inspired profiles, in canonical order."""
    return tuple(app.profile for app in NAS_SUITE.values())


def get_nas_app(name: str) -> MiniApp:
    """Look up an NPB-inspired app by kernel name."""
    try:
        return NAS_SUITE[name]
    except KeyError:
        raise ConfigError(
            f"unknown NAS kernel {name!r}; suite: {', '.join(NAS_SUITE)}"
        ) from None
