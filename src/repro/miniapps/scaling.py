"""Analytic scaling models for the mini-app suite.

Two textbook models, enough to give the workload generator realistic
runtimes and the characterisation table (E1) meaningful content:

* **Weak scaling** (the Trinity suite's regime): per-node work fixed,
  runtime grows only with communication, modelled as a log2 term —
  nearest-neighbour + reduction patterns on fat-tree networks.
* **Strong scaling** (Amdahl + communication): used in the
  characterisation table to show why these codes leave node resources
  idle long before they stop scaling *across* nodes.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError


def weak_scaling_runtime(
    base_runtime: float,
    num_nodes: int,
    comm_fraction: float,
    comm_growth: float = 0.12,
) -> float:
    """Runtime of a weak-scaled run on *num_nodes* nodes.

    ``base_runtime`` is the single-node runtime; the communication
    share of it grows by ``comm_growth`` per doubling of node count.
    """
    if base_runtime <= 0:
        raise ConfigError(f"base_runtime must be positive, got {base_runtime}")
    if num_nodes < 1:
        raise ConfigError(f"num_nodes must be >= 1, got {num_nodes}")
    compute = base_runtime * (1.0 - comm_fraction)
    comm = base_runtime * comm_fraction * (1.0 + comm_growth * math.log2(num_nodes))
    return compute + comm


def strong_scaling_efficiency(
    num_nodes: int,
    serial_fraction: float,
    comm_fraction: float,
    comm_growth: float = 0.12,
) -> float:
    """Parallel efficiency of a strong-scaled run (1.0 at one node).

    Amdahl's law with a communication overhead term:
    ``T(n) = T1 * (s + (1 - s)/n) + T1 * c * growth * log2(n)``,
    efficiency = ``T1 / (n * T(n))`` normalised to 1.0 at ``n = 1``.
    """
    if num_nodes < 1:
        raise ConfigError(f"num_nodes must be >= 1, got {num_nodes}")
    if not (0.0 <= serial_fraction < 1.0):
        raise ConfigError(f"serial_fraction={serial_fraction} outside [0, 1)")
    t1 = 1.0
    tn = (
        t1 * (serial_fraction + (1.0 - serial_fraction) / num_nodes)
        + t1 * comm_fraction * comm_growth * math.log2(num_nodes)
    )
    return t1 / (num_nodes * tn)
