"""The eight Trinity/APEX-inspired mini-applications.

Profiles are calibrated, not measured: the co-run structure they induce
under :class:`~repro.interference.model.InterferenceModel` reproduces
the qualitative behaviour reported for the real suite —

* memory-bandwidth-bound solvers (AMG, miniFE, MILC) leave core issue
  slots idle and pair profitably with compute-bound codes;
* compute-bound codes (miniDFT, miniMD) saturate the pipelines and
  gain little from pairing with each other;
* pairs of bandwidth-saturating apps lose outright.

DESIGN.md §0 records this substitution (real measurements → calibrated
analytic profiles).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.interference.profile import ResourceProfile
from repro.miniapps.base import MiniApp


def _app(
    name: str,
    core: float,
    membw: float,
    cache: float,
    comm: float,
    serial: float,
    base_runtime: float,
    shareable: bool,
    typical_nodes: tuple[int, ...],
    description: str,
    memory_mb: float = 0.0,
) -> MiniApp:
    return MiniApp(
        name=name,
        profile=ResourceProfile(
            name=name,
            core_demand=core,
            membw_demand=membw,
            cache_footprint=cache,
            comm_fraction=comm,
            serial_fraction=serial,
        ),
        base_runtime=base_runtime,
        shareable=shareable,
        typical_nodes=typical_nodes,
        description=description,
        memory_mb_per_node=memory_mb,
    )


#: The evaluation suite, keyed by app name.
TRINITY_SUITE: dict[str, MiniApp] = {
    app.name: app
    for app in (
        _app(
            "GTC",
            core=0.60, membw=0.55, cache=0.35, comm=0.15, serial=0.02,
            base_runtime=5400.0, shareable=True,
            typical_nodes=(8, 16, 32, 64),
            description="gyrokinetic toroidal PIC code for fusion plasmas",
            memory_mb=25_000,
        ),
        _app(
            "MILC",
            core=0.55, membw=0.85, cache=0.40, comm=0.25, serial=0.01,
            base_runtime=7200.0, shareable=True,
            typical_nodes=(8, 16, 32, 64),
            description="lattice QCD with conjugate-gradient sparse solves",
            memory_mb=34_000,
        ),
        _app(
            "miniFE",
            core=0.50, membw=0.80, cache=0.50, comm=0.20, serial=0.02,
            base_runtime=1800.0, shareable=True,
            typical_nodes=(1, 2, 4, 8, 16),
            description="implicit finite-element proxy (CG solve)",
            memory_mb=22_000,
        ),
        _app(
            "SNAP",
            core=0.65, membw=0.60, cache=0.45, comm=0.20, serial=0.03,
            base_runtime=3600.0, shareable=True,
            typical_nodes=(4, 8, 16, 32),
            description="discrete-ordinates neutral-particle transport proxy",
            memory_mb=28_000,
        ),
        _app(
            "AMG",
            core=0.45, membw=0.90, cache=0.55, comm=0.30, serial=0.02,
            base_runtime=2700.0, shareable=True,
            typical_nodes=(2, 4, 8, 16),
            description="algebraic multigrid solver, latency/bandwidth bound",
            memory_mb=38_000,
        ),
        _app(
            "UMT",
            core=0.70, membw=0.65, cache=0.50, comm=0.15, serial=0.03,
            base_runtime=4500.0, shareable=True,
            typical_nodes=(8, 16, 32, 64),
            description="unstructured-mesh deterministic radiation transport",
            memory_mb=31_000,
        ),
        _app(
            "miniDFT",
            core=0.95, membw=0.40, cache=0.30, comm=0.30, serial=0.04,
            base_runtime=6300.0, shareable=False,
            typical_nodes=(4, 8, 16, 32),
            description="plane-wave DFT proxy dominated by FFT/ZGEMM",
            memory_mb=40_000,
        ),
        _app(
            "miniMD",
            core=0.90, membw=0.35, cache=0.25, comm=0.10, serial=0.01,
            base_runtime=2400.0, shareable=True,
            typical_nodes=(1, 2, 4, 8),
            description="molecular dynamics proxy (Lennard-Jones force loop)",
            memory_mb=12_000,
        ),
    )
}


def suite_names() -> tuple[str, ...]:
    """Names of the suite apps, in canonical (insertion) order."""
    return tuple(TRINITY_SUITE)


def get_miniapp(name: str) -> MiniApp:
    """Look up a suite app by name."""
    try:
        return TRINITY_SUITE[name]
    except KeyError:
        raise ConfigError(
            f"unknown mini-app {name!r}; suite: {', '.join(TRINITY_SUITE)}"
        ) from None


def suite_profiles() -> tuple[ResourceProfile, ...]:
    """All suite profiles, in canonical order."""
    return tuple(app.profile for app in TRINITY_SUITE.values())
