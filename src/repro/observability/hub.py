"""TelemetryHub: counters, gauges and histograms for one run.

The hub is a plain in-process metrics registry sampled at event
boundaries by the workload manager.  It is pure bookkeeping — no
clocks, no I/O — so it pickles inside snapshots (telemetry survives
suspend/resume) and merges exactly across campaign workers: the
per-worker sidecar files a telemetry-armed campaign writes are folded
back together with :func:`merge_hub_dicts`.

Zero-overhead-when-off contract: the manager holds ``None`` instead
of a hub when telemetry is disabled, so the cost of the feature on
the default path is one ``is not None`` test per instrumented site.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import ConfigError
from repro.observability.histogram import DEFAULT_SECONDS_EDGES, Histogram


class TelemetryHub:
    """In-process metrics registry for one simulation run."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, delta: int = 1) -> None:
        """Bump a monotonically increasing counter."""
        self.counters[name] = self.counters.get(name, 0) + delta

    def set_gauge(self, name: str, value: float) -> None:
        """Record the latest value of a point-in-time quantity."""
        self.gauges[name] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        edges: Iterable[float] = DEFAULT_SECONDS_EDGES,
    ) -> None:
        """Add one observation to the named histogram (created on
        first use with *edges*)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(edges)
        hist.observe(value)

    # ------------------------------------------------------------------
    # Merge and export
    # ------------------------------------------------------------------
    def merge(self, other: "TelemetryHub") -> None:
        """Fold another hub into this one (campaign-level aggregation)."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        # Gauges are point-in-time: last writer wins, like a scrape.
        self.gauges.update(other.gauges)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                clone = Histogram(hist.edges)
                clone.merge(hist)
                self.histograms[name] = clone
            else:
                mine.merge(hist)

    def as_dict(self) -> dict[str, object]:
        """JSON-ready export with stable key order."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].as_dict()
                for k in sorted(self.histograms)
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TelemetryHub":
        hub = cls()
        counters = data.get("counters", {})
        gauges = data.get("gauges", {})
        histograms = data.get("histograms", {})
        if not all(
            isinstance(section, Mapping)
            for section in (counters, gauges, histograms)
        ):
            raise ConfigError("malformed telemetry hub payload")
        hub.counters = {str(k): int(v) for k, v in counters.items()}  # type: ignore[union-attr]
        hub.gauges = {str(k): float(v) for k, v in gauges.items()}  # type: ignore[union-attr]
        hub.histograms = {
            str(k): Histogram.from_dict(v)  # type: ignore[arg-type]
            for k, v in histograms.items()  # type: ignore[union-attr]
        }
        return hub


def merge_hub_dicts(payloads: Iterable[Mapping[str, object]]) -> dict[str, object]:
    """Merge serialised hub exports (e.g. per-worker sidecar files)
    into one combined export — the runner-side campaign merge."""
    combined = TelemetryHub()
    for payload in payloads:
        combined.merge(TelemetryHub.from_dict(payload))
    return combined.as_dict()
