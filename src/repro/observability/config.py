"""Declarative configuration of the telemetry layer.

Mirrors :class:`~repro.diagnostics.config.DiagnosticsConfig`: one
frozen, JSON-round-trippable object that travels inside
:class:`~repro.slurm.config.SchedulerConfig` (and therefore inside
campaign ``params`` dicts), so a traced run re-executes with exactly
the telemetry that produced the original records.

Telemetry is strictly observational and **off by default**: with
``enabled=False`` the manager allocates no hub, no decision trace and
no profiler, and every telemetry check in the hot path is a single
``x is not None`` test — the same inert-unless-armed contract the
diagnostics hooks follow.  Enabled or not, simulation *results* are
byte-identical (the test suite asserts this property).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Mapping

from repro.errors import ConfigError

#: Default in-memory decision-record ring capacity — large enough to
#: hold every record of an evaluation-sized run, bounded so a runaway
#: simulation cannot exhaust memory.
DEFAULT_RING = 65_536

#: Default JSONL flush batch (records buffered before an append).
DEFAULT_FLUSH_EVERY = 256

#: Default size at which the decision JSONL rotates (bytes).
DEFAULT_ROTATE_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class TelemetryConfig:
    """All tunables of the observability machinery.

    Attributes
    ----------
    enabled:
        Master switch: arms the metrics hub and the decision trace.
        Off (the default) means zero allocation and near-zero overhead.
    decisions:
        Keep structured decision records (scheduler passes, placement
        accept/reject with reason codes, lifecycle transitions,
        failures).  Only meaningful with ``enabled=True``.
    profile:
        Arm the hot-loop profiler attributing wall-clock to event
        kinds and scheduler phases.  Only meaningful with
        ``enabled=True``.
    ring:
        In-memory decision records retained (older records drop but
        stay counted; the JSONL stream, when armed, keeps everything).
    decisions_path:
        Append decision records as JSONL to this file (with size-based
        rotation); ``None`` keeps records in memory only.
    flush_every:
        Records buffered before each JSONL append.
    rotate_bytes:
        Rotate the JSONL file once it exceeds this size.
    keep:
        Rotated files retained (``decisions.jsonl.1`` ... ``.keep``).
    """

    enabled: bool = False
    decisions: bool = True
    profile: bool = False
    ring: int = DEFAULT_RING
    decisions_path: str | None = None
    flush_every: int = DEFAULT_FLUSH_EVERY
    rotate_bytes: int = DEFAULT_ROTATE_BYTES
    keep: int = 2

    def __post_init__(self) -> None:
        if self.ring < 1:
            raise ConfigError(f"ring must be >= 1, got {self.ring}")
        if self.flush_every < 1:
            raise ConfigError(
                f"flush_every must be >= 1, got {self.flush_every}"
            )
        if self.rotate_bytes < 1:
            raise ConfigError(
                f"rotate_bytes must be >= 1, got {self.rotate_bytes}"
            )
        if self.keep < 1:
            raise ConfigError(f"keep must be >= 1, got {self.keep}")

    # ------------------------------------------------------------------
    # (De)serialisation — stable keys for campaign content hashing
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return asdict(self)

    def non_default_dict(self) -> dict[str, object]:
        """Only the keys that differ from the defaults (compact params)."""
        defaults = TelemetryConfig()
        return {
            key: value
            for key, value in asdict(self).items()
            if value != getattr(defaults, key)
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "TelemetryConfig":
        known = set(TelemetryConfig.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown telemetry config keys: {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        return TelemetryConfig(**dict(data))  # type: ignore[arg-type]
