"""Campaign-level aggregation behind ``repro stats <store>``.

A campaign store holds one deterministic result record per run plus —
when the campaign ran with ``--telemetry`` — one *sidecar* file per
run under ``<store>/telemetry/`` carrying the nondeterministic
execution provenance (wall-clock, resume count, snapshot restore
time) and the run's merged telemetry hub.  Keeping the two apart is
what preserves the store's byte-identity guarantees; this module is
where they come back together for reporting.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from repro.errors import ConfigError
from repro.observability.hub import merge_hub_dicts

#: Subdirectory of a campaign store holding per-run telemetry sidecars.
TELEMETRY_DIR_NAME = "telemetry"

#: Suffix of one run's telemetry sidecar file.
TELEMETRY_SUFFIX = ".telemetry.json"


def telemetry_dir_for(store_dir: str | Path) -> Path:
    return Path(store_dir) / TELEMETRY_DIR_NAME


def telemetry_path_for(telemetry_dir: str | Path, run_id: str) -> Path:
    return Path(telemetry_dir) / f"{run_id}{TELEMETRY_SUFFIX}"


def write_telemetry_sidecar(
    telemetry_dir: str | Path, run_id: str, payload: Mapping[str, object]
) -> Path | None:
    """Best-effort sidecar write (a full disk must not fail the run)."""
    path = telemetry_path_for(telemetry_dir, run_id)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(dict(payload), sort_keys=True, indent=1) + "\n",
            encoding="utf-8",
        )
    except OSError:
        return None
    return path


def read_telemetry_sidecars(
    store_dir: str | Path, telemetry_dir: str | Path | None = None
) -> dict[str, dict]:
    """All sidecars of a store, keyed by run id (missing dir = empty).

    *telemetry_dir* overrides the default ``<store>/telemetry``
    location (campaigns may park sidecars elsewhere).
    """
    directory = (
        Path(telemetry_dir)
        if telemetry_dir is not None
        else telemetry_dir_for(store_dir)
    )
    sidecars: dict[str, dict] = {}
    if not directory.is_dir():
        return sidecars
    for path in sorted(directory.glob(f"*{TELEMETRY_SUFFIX}")):
        run_id = path.name[: -len(TELEMETRY_SUFFIX)]
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue  # a torn sidecar only degrades reporting
        if isinstance(data, dict):
            sidecars[run_id] = data
    return sidecars


def merge_campaign_telemetry(
    store_dir: str | Path, telemetry_dir: str | Path | None = None
) -> dict[str, object]:
    """The runner-side merge: fold every per-worker sidecar into one
    campaign-level document (written as ``<store>/telemetry.json``)."""
    sidecars = read_telemetry_sidecars(store_dir, telemetry_dir)
    execs = [s.get("exec", {}) for s in sidecars.values()]
    merged: dict[str, object] = {
        "runs": len(sidecars),
        "exec": {
            "wall_clock_s": sum(float(e.get("wall_clock_s", 0.0)) for e in execs),
            "resume_count": sum(int(e.get("resume_count", 0)) for e in execs),
            "restore_wall_s": sum(
                float(e.get("restore_wall_s", 0.0)) for e in execs
            ),
            "events_dispatched": sum(
                int(e.get("events_dispatched", 0)) for e in execs
            ),
        },
        "metrics": merge_hub_dicts(
            s["metrics"] for s in sidecars.values() if "metrics" in s
        ),
    }
    return merged


def write_campaign_telemetry(
    store_dir: str | Path, telemetry_dir: str | Path | None = None
) -> Path | None:
    """Merge sidecars and persist ``<store>/telemetry.json``."""
    merged = merge_campaign_telemetry(store_dir, telemetry_dir)
    path = Path(store_dir) / "telemetry.json"
    try:
        path.write_text(
            json.dumps(merged, sort_keys=True, indent=1) + "\n",
            encoding="utf-8",
        )
    except OSError:
        return None
    return path


def aggregate_store(store_dir: str | Path) -> dict[str, object]:
    """Aggregate a campaign store for ``repro stats``.

    Groups simulate records per strategy (runs, jobs, mean makespan /
    wait / efficiency), folds in telemetry sidecars where present, and
    reports quarantine counts — the complete campaign picture in one
    document.
    """
    store_dir = Path(store_dir)
    if not store_dir.is_dir():
        raise ConfigError(f"no such campaign store: {store_dir}")
    from repro.campaign.store import ResultStore

    store = ResultStore(store_dir)
    sidecars = read_telemetry_sidecars(store_dir)

    strategies: dict[str, dict] = {}
    experiments = 0
    total_runs = 0
    for run_id in sorted(store.completed_ids()):
        record = store.load(run_id)
        payload = record.get("result")
        if not isinstance(payload, dict):
            continue
        total_runs += 1
        if payload.get("kind") != "simulate":
            experiments += 1
            continue
        summary = payload.get("summary", {})
        if not isinstance(summary, dict):
            summary = {}
        row = strategies.setdefault(
            str(payload.get("strategy")),
            {
                "runs": 0, "jobs": 0, "events": 0,
                "_makespan_h": 0.0, "_wait_h": 0.0, "_comp_eff": 0.0,
                "wall_clock_s": 0.0, "resumes": 0,
            },
        )
        row["runs"] += 1
        row["jobs"] += int(payload.get("jobs", 0))
        row["events"] += int(payload.get("events_dispatched", 0))
        row["_makespan_h"] += float(summary.get("makespan_h", 0.0))
        row["_wait_h"] += float(summary.get("mean_wait_h", 0.0))
        row["_comp_eff"] += float(summary.get("comp_eff", 0.0))
        exec_info = sidecars.get(run_id, {}).get("exec", {})
        row["wall_clock_s"] += float(exec_info.get("wall_clock_s", 0.0))
        row["resumes"] += int(exec_info.get("resume_count", 0))

    rows = []
    for strategy in sorted(strategies):
        row = strategies[strategy]
        runs = row["runs"] or 1
        rows.append({
            "strategy": strategy,
            "runs": row["runs"],
            "jobs": row["jobs"],
            "events": row["events"],
            "makespan_h": row["_makespan_h"] / runs,
            "mean_wait_h": row["_wait_h"] / runs,
            "comp_eff": row["_comp_eff"] / runs,
            "wall_clock_s": row["wall_clock_s"],
            "resumes": row["resumes"],
        })

    quarantined = 0
    quarantine_path = store_dir / "quarantine.json"
    if quarantine_path.is_file():
        try:
            manifest = json.loads(quarantine_path.read_text(encoding="utf-8"))
            quarantined = int(manifest.get("quarantined", 0))
        except (OSError, json.JSONDecodeError, TypeError, ValueError):
            pass

    document: dict[str, object] = {
        "store": str(store_dir),
        "runs": total_runs,
        "experiments": experiments,
        "quarantined": quarantined,
        "strategies": rows,
    }
    if sidecars:
        document["telemetry"] = merge_campaign_telemetry(store_dir)
    return document
