"""Decision tracing: structured records of every scheduler decision.

Every scheduler cycle, backfill pass, co-allocation attempt, job
lifecycle transition, admission denial and failure/repair event emits
one structured record through :class:`DecisionTrace`.  Rejections are
*reason-coded*: each failed placement or admission carries exactly one
code from :data:`REASON_CODES`, so "why didn't my job share a node?"
is answerable from the trace instead of from a debugger.

Buffering is bounded on both axes: in memory, a ring of the most
recent ``ring`` records (older records drop but remain counted); on
disk (when ``path`` is set), records append as JSONL in
``flush_every`` batches with size-based rotation, so a long campaign
cannot fill the disk with one unbounded trace file.

Rejections are additionally *streak-suppressed*: a pending job that
fails the same probe with the same code pass after pass emits one
record when the streak starts, not one per pass (the hub counter
still counts every attempt, and ``suppressed`` tallies the elided
repeats).  Any accept or lifecycle transition for the job resets its
streaks, so the stream records every *change* of decision — which is
what keeps fully-armed tracing inside the DESIGN.md §7 overhead
budget on contended queues, where identical re-rejections dominate.

The trace pickles inside snapshots — the ring, counters and sequence
numbers travel with the manager, so a suspended/resumed run carries
its full decision history.  Only the line buffer is flushed first;
no file handle is held between flushes.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.observability.hub import TelemetryHub

#: Every reason code a rejection record may carry, with its meaning.
#: This table is the single authority (documented in DESIGN.md §7);
#: emitting an unknown code is a programming error and raises.
REASON_CODES: dict[str, str] = {
    # -- placement rejections (per scheduler pass, per helper probe) --
    "not_shareable": (
        "the job does not permit node sharing, so a shared placement "
        "was never an option"
    ),
    "no_resident_groups": (
        "no running shared job currently exposes free SMT lanes to join"
    ),
    "interference_cap": (
        "resident groups exist, but every pairing fails the "
        "compatibility policy (combined throughput below the share "
        "threshold, or one side dilated beyond the walltime grace)"
    ),
    "memory": (
        "a compatible resident exists, but the joiner's and resident's "
        "per-node working sets exceed the node's memory"
    ),
    "no_exact_cover": (
        "compatible, memory-fitting groups exist but no subset of them "
        "sums exactly to the job's node request (full-overlap rule)"
    ),
    "insufficient_idle": (
        "fewer idle nodes than the job requests"
    ),
    "reservation_collision": (
        "enough idle nodes exist, but starting now would eat into the "
        "backfill window reserved for the blocked queue head"
    ),
    "open_shared_disabled": (
        "opening idle nodes in shared mode is disabled by configuration "
        "(allow_open_shared=False)"
    ),
    "deferred_reservation": (
        "the availability profile cannot start the job this pass; it "
        "holds a reservation for a future start instead (conservative "
        "backfill only)"
    ),
    # -- admission rejections (at submission) -------------------------
    "unknown_partition": "the job names a partition that does not exist",
    "partition_limit": (
        "the partition's size or walltime limits reject the request"
    ),
    "node_memory": (
        "the requested memory per node exceeds every node's capacity"
    ),
    "avoid_nodes": (
        "after drains removed suspect nodes from service, fewer nodes "
        "remain than the job needs"
    ),
}


class DecisionTrace:
    """Bounded, optionally file-backed stream of decision records.

    Parameters
    ----------
    path:
        JSONL output file; ``None`` keeps records in memory only.
    ring:
        In-memory records retained (drop-oldest beyond this).
    flush_every:
        Records buffered between JSONL appends.
    rotate_bytes:
        Rotate the JSONL file once it exceeds this size.
    keep:
        Rotated generations retained (``<path>.1`` ... ``<path>.keep``).
    hub:
        Optional :class:`~repro.observability.hub.TelemetryHub`; the
        typed emit helpers bump its counters so metrics and trace
        cannot drift apart.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        ring: int = 65_536,
        flush_every: int = 256,
        rotate_bytes: int = 64 * 1024 * 1024,
        keep: int = 2,
        hub: "TelemetryHub | None" = None,
    ) -> None:
        if ring < 1:
            raise ConfigError(f"ring must be >= 1, got {ring}")
        self.path = Path(path) if path is not None else None
        self.flush_every = int(flush_every)
        self.rotate_bytes = int(rotate_bytes)
        self.keep = int(keep)
        self.hub = hub
        self._ring = int(ring)
        self.records: deque[dict] = deque(maxlen=self._ring)
        self.emitted = 0
        self.dropped = 0
        self.suppressed = 0
        self.write_failures = 0
        self._seq = 0
        self._buffer: list[str] = []
        #: job id -> {stage: last rejection code} for streak suppression.
        self.streaks: dict[int, dict[str, str]] = {}

    # ------------------------------------------------------------------
    # Core emission
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> dict:
        """Ring/file bookkeeping shared by every record constructor.

        The typed helpers build their record dicts in a single literal
        and call this directly — one allocation per record, no
        keyword-argument re-packing hop through :meth:`emit`.
        """
        if len(self.records) == self._ring:
            self.dropped += 1
        self.records.append(record)
        self.emitted += 1
        if self.path is not None:
            # Insertion order is deterministic (seq/t/type, then the
            # caller's fields), so no sort_keys on this hot path.
            self._buffer.append(json.dumps(record))
            if len(self._buffer) >= self.flush_every:
                self.flush()
        return record

    def emit(self, record_type: str, t: float, **fields: object) -> dict:
        """Append one record; returns it (mostly for tests)."""
        self._seq += 1
        return self._append(
            {"seq": self._seq, "t": float(t), "type": record_type, **fields}
        )

    # ------------------------------------------------------------------
    # Typed helpers — the manager and placement layer call these
    # ------------------------------------------------------------------
    def reject(
        self, t: float, stage: str, job_id: int, code: str, **fields: object
    ) -> dict | None:
        """One coded rejection record (placement probe or admission).

        Streak-suppressed: re-failing the same *stage* with the same
        *code* as the job's previous probe bumps ``suppressed`` and
        records nothing (returns None) — the stream and the hub's
        ``reject.*`` counters log decision changes, not per-pass
        repetition.  On a contended queue the suppressed path runs
        tens of thousands of times per run, so it stays minimal: two
        dict probes and an increment — and the hottest call sites
        (``core/placement.py``) consult ``streaks`` inline to skip
        even the call when the repeat would be suppressed.
        """
        stages = self.streaks.get(job_id)
        if stages is not None and stages.get(stage) == code:
            # A streak can only hold a previously-validated code.
            self.suppressed += 1
            return None
        if code not in REASON_CODES:
            raise ConfigError(
                f"unknown rejection reason code {code!r}; "
                f"known: {sorted(REASON_CODES)}"
            )
        if stages is None:
            stages = self.streaks[job_id] = {}
        stages[stage] = code
        if self.hub is not None:
            self.hub.inc(f"reject.{stage}.{code}")
        self._seq += 1
        return self._append({
            "seq": self._seq, "t": float(t), "type": "reject",
            "stage": stage, "job": job_id, "code": code, **fields,
        })

    def accept(
        self, t: float, stage: str, job_id: int, kind: str, nodes: int,
        **fields: object,
    ) -> dict:
        """A placement probe succeeded (the job starts this pass)."""
        if self.hub is not None:
            self.hub.inc(f"accept.{stage}.{kind}")
        self.streaks.pop(job_id, None)
        self._seq += 1
        return self._append({
            "seq": self._seq, "t": float(t), "type": "accept",
            "stage": stage, "job": job_id, "kind": kind, "nodes": nodes,
            **fields,
        })

    def lifecycle(self, t: float, job_id: int, state: str, **fields: object) -> dict:
        """A job lifecycle transition (submit/start/end/requeue).

        Any transition changes the job's circumstances, so its
        rejection streaks reset — the next identical rejection is a
        fresh decision and records again.
        """
        if self.hub is not None:
            self.hub.inc(f"jobs.{state}")
        self.streaks.pop(job_id, None)
        self._seq += 1
        return self._append({
            "seq": self._seq, "t": float(t), "type": "lifecycle",
            "job": job_id, "state": state, **fields,
        })

    def span(
        self, t: float, name: str, **fields: object
    ) -> dict:
        """A scheduler-cycle span summary (one per pass)."""
        if self.hub is not None:
            self.hub.inc(f"span.{name}")
        self._seq += 1
        return self._append({
            "seq": self._seq, "t": float(t), "type": "span",
            "name": name, **fields,
        })

    def event(self, t: float, name: str, **fields: object) -> dict:
        """A point event (failure, repair, reservation edge, snapshot)."""
        if self.hub is not None:
            self.hub.inc(f"event.{name}")
        self._seq += 1
        return self._append({
            "seq": self._seq, "t": float(t), "type": "event",
            "name": name, **fields,
        })

    # ------------------------------------------------------------------
    # File output
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Append buffered records to the JSONL file (best-effort:
        a full disk must never take the simulation down with it)."""
        if self.path is None or not self._buffer:
            return
        lines, self._buffer = self._buffer, []
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._maybe_rotate()
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n")
        except OSError:
            self.write_failures += 1

    def _maybe_rotate(self) -> None:
        """Size-based rotation: ``p`` -> ``p.1`` -> ... -> ``p.keep``."""
        try:
            size = self.path.stat().st_size  # type: ignore[union-attr]
        except OSError:
            return
        if size < self.rotate_bytes:
            return
        oldest = self.path.with_name(f"{self.path.name}.{self.keep}")  # type: ignore[union-attr]
        oldest.unlink(missing_ok=True)
        for index in range(self.keep - 1, 0, -1):
            source = self.path.with_name(f"{self.path.name}.{index}")  # type: ignore[union-attr]
            if source.exists():
                source.rename(self.path.with_name(f"{self.path.name}.{index + 1}"))  # type: ignore[union-attr]
        self.path.rename(self.path.with_name(f"{self.path.name}.1"))  # type: ignore[union-attr]

    def close(self) -> None:
        self.flush()

    # ------------------------------------------------------------------
    # Pickling — flush first; no handle is held between flushes, so
    # the default state is already snapshot-safe.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        self.flush()
        return self.__dict__.copy()

    def summary(self) -> dict[str, object]:
        """Compact JSON-ready account of this trace's volume."""
        return {
            "emitted": self.emitted,
            "retained": len(self.records),
            "dropped": self.dropped,
            "suppressed": self.suppressed,
            "write_failures": self.write_failures,
            "path": str(self.path) if self.path is not None else None,
        }
