"""Hot-loop profiler: where does simulation wall-clock actually go?

Attributes real time to (a) event kinds — measured around the
engine's handler dispatch, the only place every event passes through
— and (b) named scheduler phases (``placement``, ``apply``,
``interference``, ``metrics``) timed explicitly by the workload
manager.  Sampling is two ``perf_counter_ns`` calls per measured
section; with the profiler disarmed the cost is one ``is not None``
test per event.

The profiler holds integer nanosecond totals only — no handles, no
clocks at rest — so it pickles inside snapshots and merges across
campaign workers like every other telemetry object.  Wall-clock
totals are obviously not deterministic; they live in telemetry
sidecars and ``--json`` profile sections, never in result payloads.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Mapping


class HotLoopProfiler:
    """Accumulates call counts and wall nanoseconds per label."""

    __slots__ = ("event_ns", "phase_ns")

    def __init__(self) -> None:
        #: Per event-kind name: [dispatches, total nanoseconds].
        self.event_ns: dict[str, list[int]] = {}
        #: Per scheduler-phase name: [calls, total nanoseconds].
        self.phase_ns: dict[str, list[int]] = {}

    # ------------------------------------------------------------------
    # Recording (manual start/stop keeps per-event overhead minimal)
    # ------------------------------------------------------------------
    @staticmethod
    def now_ns() -> int:
        return perf_counter_ns()

    def record_event(self, kind: str, elapsed_ns: int) -> None:
        cell = self.event_ns.get(kind)
        if cell is None:
            self.event_ns[kind] = [1, elapsed_ns]
        else:
            cell[0] += 1
            cell[1] += elapsed_ns

    def record_phase(self, phase: str, elapsed_ns: int) -> None:
        cell = self.phase_ns.get(phase)
        if cell is None:
            self.phase_ns[phase] = [1, elapsed_ns]
        else:
            cell[0] += 1
            cell[1] += elapsed_ns

    class _Timer:
        """Context-manager convenience for non-hot-path callers."""

        __slots__ = ("_profiler", "_phase", "_start")

        def __init__(self, profiler: "HotLoopProfiler", phase: str) -> None:
            self._profiler = profiler
            self._phase = phase

        def __enter__(self) -> "HotLoopProfiler._Timer":
            self._start = perf_counter_ns()
            return self

        def __exit__(self, *exc_info: object) -> None:
            self._profiler.record_phase(
                self._phase, perf_counter_ns() - self._start
            )

    def phase(self, name: str) -> "HotLoopProfiler._Timer":
        return HotLoopProfiler._Timer(self, name)

    # ------------------------------------------------------------------
    # Merge and export
    # ------------------------------------------------------------------
    def merge(self, other: "HotLoopProfiler") -> None:
        for kind, (calls, ns) in other.event_ns.items():
            self.record_event(kind, ns)
            self.event_ns[kind][0] += calls - 1
        for phase, (calls, ns) in other.phase_ns.items():
            self.record_phase(phase, ns)
            self.phase_ns[phase][0] += calls - 1

    @property
    def total_event_ns(self) -> int:
        return sum(ns for _, ns in self.event_ns.values())

    def as_dict(self) -> dict[str, object]:
        """JSON-ready profile section (sorted by time, hottest first)."""

        def section(table: dict[str, list[int]]) -> dict[str, dict]:
            ordered = sorted(table.items(), key=lambda kv: (-kv[1][1], kv[0]))
            return {
                name: {
                    "calls": calls,
                    "wall_ms": ns / 1e6,
                    "mean_us": (ns / calls) / 1e3 if calls else 0.0,
                }
                for name, (calls, ns) in ordered
            }

        return {
            "events": section(self.event_ns),
            "phases": section(self.phase_ns),
            "total_event_ms": self.total_event_ns / 1e6,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "HotLoopProfiler":
        profiler = cls()
        for table_name, target in (
            ("events", profiler.event_ns),
            ("phases", profiler.phase_ns),
        ):
            table = data.get(table_name, {})
            if isinstance(table, Mapping):
                for name, cell in table.items():
                    if isinstance(cell, Mapping):
                        target[str(name)] = [
                            int(cell.get("calls", 0)),
                            int(round(float(cell.get("wall_ms", 0.0)) * 1e6)),
                        ]
        return profiler
