"""`repro top`: a stdlib, curses-free fleet dashboard.

Renders one frame of fleet state — queue census, per-worker
throughput, lease heartbeat ages, shed/quarantine counts, drain ETA —
as plain text from the :func:`~repro.observability.events.
fleet_metrics` document.  The CLI redraws it with a bare ANSI
home+clear escape (``--once`` and ``--json`` skip the escapes
entirely, so scripts and narrow terminals stay safe).

Pure rendering: no clocks, no I/O — everything observable comes in
through the document, which keeps frames unit-testable and the
dashboard honest about its own staleness.
"""

from __future__ import annotations

from typing import Mapping

#: Home the cursor and clear the screen (the whole "live" protocol).
ANSI_REDRAW = "\x1b[H\x1b[J"


def drain_eta_s(doc: Mapping[str, object]) -> float | None:
    """Seconds until the backlog drains at the fleet's current pace.

    None when unknowable: nothing pending (already drained — the ETA
    is moot) or no worker has completed a run yet (zero observed
    throughput; any number would be a guess).
    """
    census = doc.get("census", {})
    pending = int(census.get("pending", 0))  # type: ignore[union-attr]
    if pending <= 0:
        return None
    rate = sum(
        float(row.get("runs_per_s", 0.0))
        for row in doc.get("workers", [])  # type: ignore[union-attr]
    )
    if rate <= 0.0:
        return None
    return pending / rate


def _fmt_eta(seconds: float | None) -> str:
    if seconds is None:
        return "--"
    if seconds < 60:
        return f"{seconds:.1f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def render_dashboard(doc: Mapping[str, object], *, title: str = "") -> str:
    """One dashboard frame (no trailing ANSI; caller owns the redraw)."""
    census: Mapping = doc.get("census", {})  # type: ignore[assignment]
    counters: Mapping = doc.get("counters", {})  # type: ignore[assignment]
    reasons: Mapping = doc.get("requeue_reasons", {})  # type: ignore[assignment]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(
        "queue   pending {pending:>4}  claimable {claimable:>4}  "
        "leased {leased:>4}  done {completed:>4}  failed {failed:>3}  "
        "quarantined {quarantined:>3}".format(
            pending=int(census.get("pending", 0)),
            claimable=int(census.get("claimable", 0)),
            leased=int(census.get("leased", 0)),
            completed=int(census.get("completed", 0)),
            failed=int(census.get("failed", 0)),
            quarantined=int(census.get("quarantined", 0)),
        )
    )
    shed = int(reasons.get("rss-shed", 0))
    lines.append(
        "fleet   claims {claims:>5}  reclaims {reclaims:>3}  "
        "fenced {fenced:>3}  shed {shed:>3}  requeued {requeued:>3}  "
        "drain ETA {eta}".format(
            claims=int(counters.get("claimed", 0)),
            reclaims=int(counters.get("reclaimed", 0)),
            fenced=int(counters.get("fenced", 0)),
            shed=shed,
            requeued=int(counters.get("requeued", 0)),
            eta=_fmt_eta(drain_eta_s(doc)),
        )
    )
    stale = int(census.get("stale", 0))
    oldest = float(census.get("heartbeat_age_max_s", 0.0))
    lines.append(
        f"leases  live {len(census.get('leases', []))}  stale {stale}  "
        f"oldest heartbeat {oldest:.1f}s"
    )
    workers = list(doc.get("workers", []))  # type: ignore[arg-type]
    if workers:
        lines.append("")
        lines.append(
            f"{'WORKER':<24} {'DONE':>5} {'CLAIMS':>6} {'REQ':>4} "
            f"{'FEN':>4} {'RUNS/S':>8} {'IDLE':>7}"
        )
        for row in workers:
            label = f"{row.get('host', '')}:{row.get('pid', 0)}"
            lines.append(
                f"{label:<24} {int(row.get('completed', 0)):>5} "
                f"{int(row.get('claims', 0)):>6} "
                f"{int(row.get('requeued', 0)):>4} "
                f"{int(row.get('fenced', 0)):>4} "
                f"{float(row.get('runs_per_s', 0.0)):>8.3f} "
                f"{float(row.get('idle_s', 0.0)):>6.1f}s"
            )
    leases = list(census.get("leases", []))
    if leases:
        lines.append("")
        lines.append(f"{'LEASED RUN':<44} {'HOLDER':<20} {'HEARTBEAT':>10}")
        for lease in leases:
            holder = f"{lease.get('host', '')}:{lease.get('pid', 0)}"
            age = float(lease.get("heartbeat_age_s", 0.0))
            flag = "  STALE" if lease.get("stale") else ""
            lines.append(
                f"{str(lease.get('run_id', ''))[:44]:<44} {holder:<20} "
                f"{age:>9.1f}s{flag}"
            )
    slo = doc.get("slo", {})
    wait = slo.get("queue_wait_seconds") if isinstance(slo, Mapping) else None
    if wait and int(wait.get("count", 0)):
        mean = float(wait.get("sum", 0.0)) / max(1, int(wait.get("count", 0)))
        lines.append("")
        lines.append(
            f"slo     mean queue wait {mean:.3f}s over "
            f"{int(wait.get('count', 0))} runs"
        )
    return "\n".join(lines) + "\n"
