"""Distributed-trace stitcher: one Perfetto document per campaign.

The fleet event sidecars (:mod:`repro.observability.events`) record
every lifecycle boundary a run crosses — submission, enqueue, lease
claim/renew/reclaim, commit, fence-discard — each tagged with the
submission's content-derived ``trace_id``.  This module folds them
into a single Chrome-trace document with three process lanes, stacked
below the in-simulator lanes PR 5 established (cluster pid 1,
scheduler pid 2):

* pid 3 — **service**: one span per HTTP submission (replays join the
  original span's lane as instants, they do not re-execute).
* pid 4 — **leases**: one thread per run; a span per lease *tenure*
  (claim token k → the terminal event carrying token k).  A tenure
  ended by a stale-lease reclaim stays on the timeline, marked
  ``superseded: true`` with the fencing token that displaced it —
  zombies are evidence, not noise.
* pid 5 — **workers**: one thread per worker process; a span per run
  execution attempt, so fleet utilisation is readable at a glance.

The output passes the same :func:`~repro.observability.perfetto.
validate_trace` contract as every other exporter in the repo:
integer microseconds, non-overlapping X spans per lane.
"""

from __future__ import annotations

from pathlib import Path

from repro.observability.events import TRACE_KEY, read_fleet_events

#: Process lanes (pids 1 and 2 belong to the in-simulator exporter).
SERVICE_PID = 3
LEASE_PID = 4
WORKER_PID = 5

#: Floor for zero-duration tenures so spans stay visible (1 µs).
_MIN_DUR_US = 1

#: Events that end a lease tenure, with the span name suffix they earn.
_TENURE_ENDERS = {
    "complete": "ok",
    "requeue": "requeued",
    "failed": "failed",
    "quarantined": "quarantined",
    "fenced": "fenced",
}


def _meta(pid: int, name: str, tid: int = 0) -> dict:
    event: dict = {
        "name": "process_name" if tid == 0 else "thread_name",
        "ph": "M",
        "pid": pid,
        "ts": 0,
        "args": {"name": name},
    }
    if tid:
        event["tid"] = tid
    return event


def _clip_lane_overlaps(spans: list[dict]) -> None:
    """Clip X spans in one (pid, tid) lane so none overlap.

    Fleet clocks are per-process ``time.time()`` readings; sub-ms skew
    between a worker's commit stamp and the parent's reclaim stamp can
    produce microsecond overlaps that would fail the validator.  The
    earlier span wins; the later one is shifted to start at its end.
    """
    spans.sort(key=lambda e: (e["ts"], -e["dur"]))
    horizon = 0
    for span in spans:
        if span["ts"] < horizon:
            shift = horizon - span["ts"]
            span["ts"] += shift
            span["dur"] = max(_MIN_DUR_US, span["dur"] - shift)
        horizon = span["ts"] + span["dur"]


def stitch_store(store_root: str | Path) -> dict:
    """Stitch one store's fleet events into a Perfetto document.

    Raises nothing on sparse input: a store with no sidecars yields a
    document with only metadata events (callers decide whether that is
    an error — ``repro trace --stitched`` treats it as one).
    """
    store_root = Path(store_root)
    events = read_fleet_events(store_root)
    base = min((float(e["t"]) for e in events), default=0.0)

    def usec(t: float) -> int:
        return max(0, int(round((t - base) * 1e6)))

    trace_events: list[dict] = [
        _meta(SERVICE_PID, "service: submissions"),
        _meta(LEASE_PID, "queue: lease tenures"),
        _meta(WORKER_PID, "fleet: workers"),
    ]
    instants: list[dict] = []
    lanes: dict[tuple[int, int], list[dict]] = {}

    def add_span(pid: int, tid: int, span: dict) -> None:
        span["pid"] = pid
        span["tid"] = tid
        lanes.setdefault((pid, tid), []).append(span)

    # --- service lane: one span per submission -----------------------
    submit_tid = 0
    submit_lanes: dict[str, int] = {}
    end_by_trace: dict[str, float] = {}
    for event in events:
        trace = event.get(TRACE_KEY)
        if isinstance(trace, str) and event.get("kind") in (
            "complete", "failed", "quarantined",
        ):
            end_by_trace[trace] = max(
                end_by_trace.get(trace, 0.0), float(event["t"])
            )
    for event in events:
        if event.get("kind") != "submit":
            continue
        trace = str(event.get(TRACE_KEY, ""))
        if trace in submit_lanes:
            # Idempotent replay: joins the original span as an instant.
            instants.append({
                "name": "submit replayed",
                "ph": "i",
                "s": "t",
                "pid": SERVICE_PID,
                "tid": submit_lanes[trace],
                "ts": usec(float(event["t"])),
                "args": {"trace": trace},
            })
            continue
        submit_tid += 1
        submit_lanes[trace] = submit_tid
        trace_events.append(
            _meta(SERVICE_PID, f"submission {trace[:12]}", submit_tid)
        )
        start = float(event["t"])
        end = max(end_by_trace.get(trace, start), start)
        add_span(SERVICE_PID, submit_tid, {
            "name": f"campaign {trace[:12]}",
            "cat": "service",
            "ph": "X",
            "ts": usec(start),
            "dur": max(_MIN_DUR_US, usec(end) - usec(start)),
            "args": {
                "trace": trace,
                "runs": int(event.get("runs", 0)),
                "source": str(event.get("source", "")),
            },
        })

    # --- lease lanes: one thread per run, one span per tenure --------
    run_tids: dict[str, int] = {}

    def lease_tid(run_id: str) -> int:
        if run_id not in run_tids:
            run_tids[run_id] = len(run_tids) + 1
            trace_events.append(
                _meta(LEASE_PID, f"run {run_id[:16]}", run_tids[run_id])
            )
        return run_tids[run_id]

    open_tenures: dict[str, dict] = {}
    for event in events:
        kind = str(event.get("kind"))
        run_id = event.get("run_id")
        if not isinstance(run_id, str):
            continue
        t = float(event["t"])
        trace = event.get(TRACE_KEY)
        if kind == "enqueue":
            instants.append({
                "name": "enqueue",
                "ph": "i",
                "s": "t",
                "pid": LEASE_PID,
                "tid": lease_tid(run_id),
                "ts": usec(t),
                "args": {"run": run_id, "trace": trace},
            })
        elif kind == "claim":
            open_tenures[run_id] = {
                "start": t,
                "token": int(event.get("token", 0)),
                "pid": int(event.get("pid", 0)),
                "trace": trace,
                "renews": 0,
            }
        elif kind == "renew":
            tenure = open_tenures.get(run_id)
            if tenure is not None:
                tenure["renews"] += 1
        elif kind in _TENURE_ENDERS:
            tenure = open_tenures.pop(run_id, None)
            if tenure is None:
                continue
            add_span(LEASE_PID, lease_tid(run_id), {
                "name": f"lease #{tenure['token']} ({_TENURE_ENDERS[kind]})",
                "cat": "lease",
                "ph": "X",
                "ts": usec(tenure["start"]),
                "dur": max(_MIN_DUR_US, usec(t) - usec(tenure["start"])),
                "args": {
                    "run": run_id,
                    "token": tenure["token"],
                    "holder_pid": tenure["pid"],
                    "renews": tenure["renews"],
                    "outcome": _TENURE_ENDERS[kind],
                    "trace": tenure["trace"],
                    "superseded": False,
                },
            })
        elif kind == "reclaim":
            # The zombie tenure: claim with token k, displaced by a
            # fencing bump to new_token.  Marked superseded, kept.
            tenure = open_tenures.pop(run_id, None)
            new_token = int(event.get("new_token", 0))
            if tenure is not None:
                add_span(LEASE_PID, lease_tid(run_id), {
                    "name": f"lease #{tenure['token']} (superseded)",
                    "cat": "lease",
                    "ph": "X",
                    "ts": usec(tenure["start"]),
                    "dur": max(
                        _MIN_DUR_US, usec(t) - usec(tenure["start"])
                    ),
                    "args": {
                        "run": run_id,
                        "token": tenure["token"],
                        "holder_pid": int(
                            event.get("holder_pid", tenure["pid"])
                        ),
                        "renews": tenure["renews"],
                        "outcome": "superseded",
                        "trace": tenure["trace"] or trace,
                        "superseded": True,
                        "fenced_by": new_token,
                    },
                })
            instants.append({
                "name": f"reclaim -> #{new_token}",
                "ph": "i",
                "s": "t",
                "pid": LEASE_PID,
                "tid": lease_tid(run_id),
                "ts": usec(t),
                "args": {
                    "run": run_id,
                    "fenced_by": new_token,
                    "trace": trace,
                },
            })

    # A tenure still open at the end of the log (a live in-flight run,
    # or a kill so hard no later event exists) closes at the log tail.
    tail = max((float(e["t"]) for e in events), default=0.0)
    for run_id, tenure in open_tenures.items():
        add_span(LEASE_PID, lease_tid(run_id), {
            "name": f"lease #{tenure['token']} (open)",
            "cat": "lease",
            "ph": "X",
            "ts": usec(tenure["start"]),
            "dur": max(_MIN_DUR_US, usec(tail) - usec(tenure["start"])),
            "args": {
                "run": run_id,
                "token": tenure["token"],
                "holder_pid": tenure["pid"],
                "renews": tenure["renews"],
                "outcome": "open",
                "trace": tenure["trace"],
                "superseded": False,
            },
        })

    # --- worker lanes: one thread per pid, a span per attempt --------
    worker_tids: dict[int, int] = {}

    def worker_tid(pid: int) -> int:
        if pid not in worker_tids:
            worker_tids[pid] = len(worker_tids) + 1
            trace_events.append(
                _meta(WORKER_PID, f"worker pid {pid}", worker_tids[pid])
            )
        return worker_tids[pid]

    open_attempts: dict[str, dict] = {}
    for event in events:
        kind = str(event.get("kind"))
        run_id = event.get("run_id")
        if not isinstance(run_id, str):
            continue
        t = float(event["t"])
        if kind == "claim":
            open_attempts[run_id] = {
                "start": t,
                "pid": int(event.get("pid", 0)),
                "token": int(event.get("token", 0)),
                "trace": event.get(TRACE_KEY),
            }
        elif kind in _TENURE_ENDERS or kind == "reclaim":
            attempt = open_attempts.pop(run_id, None)
            if attempt is None:
                continue
            outcome = (
                "killed" if kind == "reclaim" else _TENURE_ENDERS[kind]
            )
            add_span(WORKER_PID, worker_tid(attempt["pid"]), {
                "name": f"{run_id[:16]} ({outcome})",
                "cat": "worker",
                "ph": "X",
                "ts": usec(attempt["start"]),
                "dur": max(_MIN_DUR_US, usec(t) - usec(attempt["start"])),
                "args": {
                    "run": run_id,
                    "token": attempt["token"],
                    "outcome": outcome,
                    "trace": attempt["trace"],
                },
            })

    for lane in lanes.values():
        _clip_lane_overlaps(lane)
        trace_events.extend(lane)
    trace_events.extend(instants)
    traces = sorted(
        {
            e[TRACE_KEY]
            for e in events
            if isinstance(e.get(TRACE_KEY), str) and e[TRACE_KEY]
        }
    )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.observability.stitch",
            "store": str(store_root),
            "traces": traces,
            "events": len(events),
        },
    }
