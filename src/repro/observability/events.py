"""Fleet event sidecars: the durable substrate of the observability
plane (DESIGN.md §12).

The distributed campaign plane — submission front-end, durable queue,
worker fleet — has no shared memory, so every live signal it exports
is reconstructed from **per-process event sidecars**: append-only,
fsync'd JSONL files under ``<store>/.queue/metrics/``, one per
``<host>-<pid>``.  The queue layer appends one small record at each
lifecycle boundary (enqueue, claim, renew, complete, requeue, reclaim,
fence-discard, terminal failure/quarantine); readers — ``repro queue
metrics``, ``repro top``, the server's ``GET /metrics``, the
distributed-trace stitcher — merge the files after the fact.

Crash contract: appends go through the ``queue.metrics.write``
failpoint, so the chaos harness can hard-kill a worker mid-append; a
torn tail is *tolerated* by every reader (the unparseable final line
is skipped), surfaced by ``repro fsck`` as a warning, and truncated by
``fsck --repair``.  Sidecars live under the dot-hidden ``.queue/``
directory, outside the store-fingerprint surface, so armed
observability keeps result stores byte-identical to disarmed runs —
the PR 5 purity contract, extended fleet-wide.

Trace context: every submission mints a content-derived ``trace_id``
(the same hash as its submission id, so idempotent replays join the
same trace).  It rides queue items' ``extra[TRACE_KEY]`` into workers;
:func:`set_current_trace` / :func:`current_trace` carry it across the
entry-point call boundary so telemetry sidecars and decision traces
can tag themselves without widening any signature.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from pathlib import Path
from typing import Callable, Iterable, Mapping

from repro.faultinject import failpoint_write, with_io_retries
from repro.observability.histogram import Histogram

#: Directory under ``<store>/.queue/`` holding the event sidecars.
METRICS_DIR_NAME = "metrics"

#: Sidecar filename suffix.  Chosen to stay clear of the fsck residue
#: globs (``*.tmp``, ``.*.tmp``, ``*.fired``) — sidecars are durable
#: state, not leftovers.
EVENTS_SUFFIX = ".events.jsonl"

#: Key under ``QueueItem.extra`` carrying the trace id into workers.
TRACE_KEY = "trace"

#: Prometheus text exposition format (hand-rendered; stdlib only).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Bucket upper bounds for the fleet SLO histograms.  Queue waits and
#: per-run executions on a healthy fleet are sub-second to minutes;
#: the trailing buckets catch stalled drains.
SLO_SECONDS_EDGES: tuple[float, ...] = (
    0.05, 0.25, 1.0, 5.0, 15.0, 60.0, 300.0, 1800.0,
)

#: The metric-name authority table (mirrors ``REASON_CODES`` in
#: :mod:`repro.observability.trace`): every series ``repro queue
#: metrics`` / ``GET /metrics`` may emit, name -> (type, help).  The
#: renderer refuses to invent names outside this table, and DESIGN.md
#: §12 documents exactly these.
METRIC_NAMES: dict[str, tuple[str, str]] = {
    "repro_queue_pending": ("gauge", "Queue items not yet retired"),
    "repro_queue_claimable": (
        "gauge", "Pending items with no live lease"),
    "repro_queue_leased": ("gauge", "Items under a live lease"),
    "repro_queue_completed": ("gauge", "Results committed to the store"),
    "repro_queue_failed": ("gauge", "Terminal failed/ items"),
    "repro_queue_quarantined": ("gauge", "Terminal quarantined/ items"),
    "repro_lease_stale": (
        "gauge", "Live leases past their heartbeat TTL"),
    "repro_lease_heartbeat_age_max_seconds": (
        "gauge", "Oldest live-lease heartbeat age"),
    "repro_runs_enqueued_total": ("counter", "Queue items created"),
    "repro_runs_claimed_total": ("counter", "Successful lease claims"),
    "repro_runs_completed_total": (
        "counter", "Results committed through the queue"),
    "repro_runs_requeued_total": (
        "counter", "Voluntary hand-backs (shed, sigterm, interrupt)"),
    "repro_runs_reclaimed_total": (
        "counter", "Stale-lease reclaims (zombie supersessions)"),
    "repro_runs_fenced_total": (
        "counter", "In-flight results discarded by a superseded token"),
    "repro_runs_failed_total": ("counter", "Terminal failures"),
    "repro_runs_quarantined_total": ("counter", "Terminal quarantines"),
    "repro_slo_queue_wait_seconds": (
        "histogram", "Submit/enqueue to first claim"),
    "repro_slo_execution_seconds": (
        "histogram", "Claim to committed result"),
    "repro_slo_end_to_end_seconds": (
        "histogram", "Enqueue to committed result"),
    # Server-side admission series (``GET /metrics`` only; offline
    # ``repro queue metrics`` has no server in front of it).
    "repro_http_requests_total": ("counter", "Requests past the health "
                                  "bypass (admission-gated)"),
    "repro_http_accepted_total": ("counter", "Requests granted a slot"),
    "repro_http_shed_total": ("counter", "Requests shed 429/503"),
    "repro_http_backlog_timeouts_total": (
        "counter", "Backlog waiters shed at the deadline"),
    "repro_http_rejected_draining_total": (
        "counter", "Requests refused while draining"),
    "repro_http_deadline_timeouts_total": (
        "counter", "Handlers cancelled at the deadline"),
    "repro_http_streams_opened_total": ("counter", "SSE streams opened"),
    "repro_http_streams_completed_total": (
        "counter", "SSE streams that saw completion"),
    "repro_http_streams_reaped_total": (
        "counter", "Half-open SSE streams reaped"),
    "repro_http_streams_shed_total": (
        "counter", "SSE streams refused at the cap"),
    "repro_http_submissions_created_total": (
        "counter", "New submissions accepted"),
    "repro_http_submissions_replayed_total": (
        "counter", "Idempotent submission replays"),
    "repro_http_inflight": ("gauge", "Handlers currently admitted"),
    "repro_http_waiting": ("gauge", "Requests parked in the backlog"),
    "repro_http_streams_active": ("gauge", "SSE streams currently open"),
    "repro_http_draining": ("gauge", "1 while a drain is in progress"),
}

#: ``self.metrics`` counter name (server) -> Prometheus series name.
_ADMISSION_SERIES: dict[str, str] = {
    "requests": "repro_http_requests_total",
    "accepted": "repro_http_accepted_total",
    "shed": "repro_http_shed_total",
    "backlog_timeouts": "repro_http_backlog_timeouts_total",
    "rejected_draining": "repro_http_rejected_draining_total",
    "deadline_timeouts": "repro_http_deadline_timeouts_total",
    "streams_opened": "repro_http_streams_opened_total",
    "streams_completed": "repro_http_streams_completed_total",
    "streams_reaped": "repro_http_streams_reaped_total",
    "streams_shed": "repro_http_streams_shed_total",
    "submissions_created": "repro_http_submissions_created_total",
    "submissions_replayed": "repro_http_submissions_replayed_total",
    "inflight": "repro_http_inflight",
    "waiting": "repro_http_waiting",
    "streams_active": "repro_http_streams_active",
    "draining": "repro_http_draining",
}

#: Event kind -> fleet counter it increments.
_KIND_COUNTERS: dict[str, str] = {
    "enqueue": "enqueued",
    "claim": "claimed",
    "complete": "completed",
    "requeue": "requeued",
    "reclaim": "reclaimed",
    "fenced": "fenced",
    "failed": "failed",
    "quarantined": "quarantined",
}


# ----------------------------------------------------------------------
# Trace context
# ----------------------------------------------------------------------
_current_trace: str | None = None


def set_current_trace(trace_id: str | None) -> str | None:
    """Install the ambient trace id for this process; returns the
    previous value so callers can restore it (``try/finally``)."""
    global _current_trace
    previous = _current_trace
    _current_trace = trace_id
    return previous


def current_trace() -> str | None:
    """The ambient trace id, or None outside any traced execution."""
    return _current_trace


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
def _safe_host(host: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]", "_", host) or "host"


class EventLog:
    """Append-only fsync'd event sidecar for one process.

    One file per ``<host>-<pid>`` under the queue's ``metrics/``
    directory — no shared memory, no cross-process locking; merging is
    the reader's job.  Each :meth:`emit` writes one complete JSON line
    in a single ``write`` on an ``O_APPEND`` handle (so concurrent
    emitters within a process cannot interleave partial lines) and
    fsyncs it, guarded by the ``queue.metrics.write`` failpoint — the
    chaos harness kills here and the torn tail must be tolerated.
    """

    FAILPOINT = "queue.metrics.write"

    def __init__(
        self,
        metrics_dir: str | Path,
        *,
        pid: int | None = None,
        host: str | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.dir = Path(metrics_dir)
        self.pid = os.getpid() if pid is None else int(pid)
        if host is None:
            from repro.campaign.lease import local_host

            host = local_host()
        self.host = host
        self.path = self.dir / (
            f"{_safe_host(self.host)}-{self.pid}{EVENTS_SUFFIX}"
        )
        self._clock = clock
        self._handle = None
        self._lock = threading.Lock()

    def emit(self, kind: str, run_id: str | None = None, **fields) -> None:
        """Durably append one event; None-valued fields are dropped."""
        record: dict[str, object] = {
            "t": round(float(self._clock()), 6),
            "kind": str(kind),
            "pid": self.pid,
            "host": self.host,
        }
        if run_id is not None:
            record["run_id"] = run_id
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")

        def _attempt() -> None:
            with self._lock:
                if self._handle is None:
                    self.dir.mkdir(parents=True, exist_ok=True)
                    self._handle = open(self.path, "ab")
                try:
                    failpoint_write(self.FAILPOINT, self._handle, data)
                    self._handle.flush()
                    os.fsync(self._handle.fileno())
                except OSError:
                    # Drop the handle so the retry reopens cleanly.
                    try:
                        self._handle.close()
                    except OSError:
                        pass
                    self._handle = None
                    raise

        with_io_retries(_attempt)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------
def metrics_dir_for(store_root: str | Path) -> Path:
    from repro.campaign.queue import QUEUE_DIR_NAME

    return Path(store_root) / QUEUE_DIR_NAME / METRICS_DIR_NAME


def read_event_log(path: str | Path) -> list[dict]:
    """Parse one sidecar, skipping torn or garbled lines.

    A crash mid-append (power cut, ``queue.metrics.write`` kill) leaves
    at most one unparseable line; observability must degrade, never
    fail, so *any* undecodable line is dropped silently — ``repro
    fsck`` is the tool that reports them.
    """
    events: list[dict] = []
    try:
        raw = Path(path).read_bytes()
    except OSError:
        return events
    for line in raw.split(b"\n"):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            continue
        if isinstance(record, dict) and "kind" in record and "t" in record:
            events.append(record)
    return events


def read_fleet_events(store_root: str | Path) -> list[dict]:
    """All fleet events under a store, merged and time-ordered."""
    metrics_dir = metrics_dir_for(store_root)
    events: list[dict] = []
    if metrics_dir.is_dir():
        for path in sorted(metrics_dir.glob(f"*{EVENTS_SUFFIX}")):
            events.extend(read_event_log(path))
    events.sort(key=lambda e: (float(e.get("t", 0.0)), str(e.get("kind"))))
    return events


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def _slo_samples(
    events: Iterable[dict],
) -> tuple[list[float], list[float], list[float]]:
    """(queue waits, executions, end-to-ends) in seconds, one sample
    per completed run: first enqueue -> first claim -> complete."""
    enqueued: dict[str, float] = {}
    claimed: dict[str, float] = {}
    waits: list[float] = []
    execs: list[float] = []
    totals: list[float] = []
    for event in events:
        run_id = event.get("run_id")
        if not isinstance(run_id, str):
            continue
        kind = event.get("kind")
        t = float(event.get("t", 0.0))
        if kind == "enqueue":
            enqueued.setdefault(run_id, t)
        elif kind == "claim":
            if run_id not in claimed:
                claimed[run_id] = t
                if run_id in enqueued:
                    waits.append(max(0.0, t - enqueued[run_id]))
        elif kind == "complete":
            if run_id in claimed:
                execs.append(max(0.0, t - claimed.pop(run_id)))
            if run_id in enqueued:
                totals.append(max(0.0, t - enqueued.pop(run_id)))
    return waits, execs, totals


def _worker_rows(events: Iterable[dict], now: float) -> list[dict]:
    """Per-worker throughput rows from claim/commit events."""
    workers: dict[tuple[int, str], dict] = {}
    for event in events:
        kind = event.get("kind")
        if kind not in ("claim", "complete", "requeue", "fenced", "renew"):
            continue
        pid = int(event.get("pid", 0))
        host = str(event.get("host", ""))
        row = workers.setdefault((pid, host), {
            "pid": pid,
            "host": host,
            "claims": 0,
            "completed": 0,
            "requeued": 0,
            "fenced": 0,
            "first_t": float(event["t"]),
            "last_t": float(event["t"]),
        })
        row["last_t"] = max(row["last_t"], float(event["t"]))
        row["first_t"] = min(row["first_t"], float(event["t"]))
        if kind == "claim":
            row["claims"] += 1
        elif kind == "complete":
            row["completed"] += 1
        elif kind == "requeue":
            row["requeued"] += 1
        elif kind == "fenced":
            row["fenced"] += 1
    rows = []
    for row in workers.values():
        window = max(1e-9, row["last_t"] - row["first_t"])
        row["runs_per_s"] = (
            round(row["completed"] / window, 4) if row["completed"] else 0.0
        )
        row["idle_s"] = round(max(0.0, now - row["last_t"]), 3)
        rows.append(row)
    rows.sort(key=lambda r: (r["host"], r["pid"]))
    return rows


def fleet_metrics(
    store_root: str | Path,
    *,
    census: Mapping[str, object] | None = None,
    now: float | None = None,
) -> dict[str, object]:
    """One store's observability document: queue census + event-derived
    counters, per-worker throughput and the three SLO histograms.

    The census rides along (``repro top`` and ``/metrics`` need both);
    pass a pre-computed one to avoid a second directory scan.
    """
    from repro.campaign.queue import WorkQueue, has_queue

    store_root = Path(store_root)
    now = time.time() if now is None else now
    if census is None:
        census = (
            WorkQueue(store_root).status()
            if has_queue(store_root)
            else {
                "store": str(store_root), "pending": 0, "claimable": 0,
                "leased": 0, "failed": 0, "quarantined": 0,
                "completed": 0, "stale": 0, "heartbeat_age_max_s": 0.0,
                "leases": [],
            }
        )
    events = read_fleet_events(store_root)
    counters = {name: 0 for name in _KIND_COUNTERS.values()}
    requeue_reasons: dict[str, int] = {}
    traces: set[str] = set()
    for event in events:
        counter = _KIND_COUNTERS.get(str(event.get("kind")))
        if counter is not None:
            counters[counter] += 1
        if event.get("kind") == "requeue":
            reason = str(event.get("reason", "")) or "unknown"
            requeue_reasons[reason] = requeue_reasons.get(reason, 0) + 1
        trace = event.get(TRACE_KEY)
        if isinstance(trace, str) and trace:
            traces.add(trace)
    waits, execs, totals = _slo_samples(events)
    slo = {}
    for name, samples in (
        ("queue_wait_seconds", waits),
        ("execution_seconds", execs),
        ("end_to_end_seconds", totals),
    ):
        hist = Histogram(SLO_SECONDS_EDGES)
        for sample in samples:
            hist.observe(sample)
        slo[name] = hist.as_dict()
    return {
        "store": str(store_root),
        "census": dict(census),
        "counters": counters,
        "requeue_reasons": dict(sorted(requeue_reasons.items())),
        "slo": slo,
        "workers": _worker_rows(events, now),
        "traces": sorted(traces),
        "events": len(events),
    }


def merge_fleet_metrics(docs: Iterable[Mapping]) -> dict[str, object]:
    """Fold per-store documents into one fleet-wide view (the shape
    :func:`fleet_metrics` returns, stores listed under ``"stores"``)."""
    merged: dict[str, object] = {
        "stores": [],
        "census": {
            "pending": 0, "claimable": 0, "leased": 0, "completed": 0,
            "failed": 0, "quarantined": 0, "stale": 0,
            "heartbeat_age_max_s": 0.0, "leases": [],
        },
        "counters": {name: 0 for name in _KIND_COUNTERS.values()},
        "requeue_reasons": {},
        "slo": {},
        "workers": [],
        "traces": [],
        "events": 0,
    }
    census: dict = merged["census"]  # type: ignore[assignment]
    counters: dict = merged["counters"]  # type: ignore[assignment]
    reasons: dict = merged["requeue_reasons"]  # type: ignore[assignment]
    slo_hists: dict[str, Histogram] = {}
    traces: set[str] = set()
    for doc in docs:
        merged["stores"].append(doc.get("store", ""))  # type: ignore[union-attr]
        doc_census = doc.get("census", {})
        for key in ("pending", "claimable", "leased", "completed",
                    "failed", "quarantined", "stale"):
            census[key] += int(doc_census.get(key, 0))  # type: ignore[arg-type]
        census["heartbeat_age_max_s"] = max(
            float(census["heartbeat_age_max_s"]),
            float(doc_census.get("heartbeat_age_max_s", 0.0)),  # type: ignore[arg-type]
        )
        census["leases"].extend(doc_census.get("leases", []))
        for name, value in doc.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for reason, value in doc.get("requeue_reasons", {}).items():
            reasons[reason] = reasons.get(reason, 0) + int(value)
        for name, payload in doc.get("slo", {}).items():
            hist = Histogram.from_dict(payload)
            if name in slo_hists:
                slo_hists[name].merge(hist)
            else:
                slo_hists[name] = hist
        merged["workers"].extend(doc.get("workers", []))  # type: ignore[union-attr]
        traces.update(
            t for t in doc.get("traces", []) if isinstance(t, str)
        )
        merged["events"] = int(merged["events"]) + int(doc.get("events", 0))
    merged["slo"] = {
        name: hist.as_dict() for name, hist in sorted(slo_hists.items())
    }
    merged["traces"] = sorted(traces)
    return merged


# ----------------------------------------------------------------------
# Prometheus text rendering
# ----------------------------------------------------------------------
def _prom_number(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _series(lines: list[str], name: str, value: float) -> None:
    kind, help_text = METRIC_NAMES[name]
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")
    lines.append(f"{name} {_prom_number(value)}")


def _histogram_series(
    lines: list[str], name: str, payload: Mapping[str, object]
) -> None:
    kind, help_text = METRIC_NAMES[name]
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")
    hist = Histogram.from_dict(payload)
    cumulative = 0
    for edge, count in zip(hist.edges, hist.counts):
        cumulative += count
        lines.append(
            f'{name}_bucket{{le="{_prom_number(edge)}"}} {cumulative}'
        )
    cumulative += hist.counts[-1]
    lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
    lines.append(f"{name}_sum {repr(hist.total)}")
    lines.append(f"{name}_count {hist.count}")


def render_prometheus(
    doc: Mapping[str, object],
    *,
    admission: Mapping[str, int] | None = None,
) -> str:
    """Render a (merged) fleet-metrics document as Prometheus text.

    Every series name comes from :data:`METRIC_NAMES`; *admission* is
    the server's live counter snapshot (``GET /metrics`` only).
    """
    lines: list[str] = []
    census = doc.get("census", {})
    for key in ("pending", "claimable", "leased", "completed",
                "failed", "quarantined"):
        _series(lines, f"repro_queue_{key}", int(census.get(key, 0)))  # type: ignore[union-attr]
    _series(lines, "repro_lease_stale", int(census.get("stale", 0)))  # type: ignore[union-attr]
    _series(
        lines, "repro_lease_heartbeat_age_max_seconds",
        float(census.get("heartbeat_age_max_s", 0.0)),  # type: ignore[union-attr]
    )
    counters = doc.get("counters", {})
    for short, series in (
        ("enqueued", "repro_runs_enqueued_total"),
        ("claimed", "repro_runs_claimed_total"),
        ("completed", "repro_runs_completed_total"),
        ("requeued", "repro_runs_requeued_total"),
        ("reclaimed", "repro_runs_reclaimed_total"),
        ("fenced", "repro_runs_fenced_total"),
        ("failed", "repro_runs_failed_total"),
        ("quarantined", "repro_runs_quarantined_total"),
    ):
        _series(lines, series, int(counters.get(short, 0)))  # type: ignore[union-attr]
    for name, payload in doc.get("slo", {}).items():  # type: ignore[union-attr]
        _histogram_series(lines, f"repro_slo_{name}", payload)
    if admission is not None:
        for short, series in _ADMISSION_SERIES.items():
            if short in admission:
                _series(lines, series, int(admission[short]))
    return "\n".join(lines) + "\n"
