"""Telemetry subsystem: metrics registry, decision tracing, hot-loop
profiling and Perfetto export.

Everything here is *purely observational*: armed or disarmed, the
simulation's results are byte-identical.  Disarmed (the default), the
scheduler holds ``None`` in place of every telemetry object and pays
one ``is not None`` test per instrumented site.
"""

from repro.observability.config import TelemetryConfig
from repro.observability.events import (
    METRIC_NAMES,
    PROMETHEUS_CONTENT_TYPE,
    SLO_SECONDS_EDGES,
    TRACE_KEY,
    EventLog,
    current_trace,
    fleet_metrics,
    merge_fleet_metrics,
    read_fleet_events,
    render_prometheus,
    set_current_trace,
)
from repro.observability.histogram import (
    DEFAULT_SECONDS_EDGES,
    Histogram,
    count_histogram,
    size_class_labels,
    size_class_of,
)
from repro.observability.hub import TelemetryHub, merge_hub_dicts
from repro.observability.perfetto import (
    CLUSTER_PID,
    SCHEDULER_PID,
    perfetto_trace,
    validate_trace,
    write_perfetto,
)
from repro.observability.profiler import HotLoopProfiler
from repro.observability.stats import (
    aggregate_store,
    merge_campaign_telemetry,
    read_telemetry_sidecars,
    telemetry_dir_for,
    telemetry_path_for,
    write_campaign_telemetry,
    write_telemetry_sidecar,
)
from repro.observability.stitch import (
    LEASE_PID,
    SERVICE_PID,
    WORKER_PID,
    stitch_store,
)
from repro.observability.trace import REASON_CODES, DecisionTrace

__all__ = [
    "CLUSTER_PID",
    "DEFAULT_SECONDS_EDGES",
    "DecisionTrace",
    "EventLog",
    "LEASE_PID",
    "METRIC_NAMES",
    "PROMETHEUS_CONTENT_TYPE",
    "SCHEDULER_PID",
    "SERVICE_PID",
    "SLO_SECONDS_EDGES",
    "TRACE_KEY",
    "WORKER_PID",
    "Histogram",
    "HotLoopProfiler",
    "REASON_CODES",
    "TelemetryConfig",
    "TelemetryHub",
    "aggregate_store",
    "count_histogram",
    "current_trace",
    "fleet_metrics",
    "merge_campaign_telemetry",
    "merge_fleet_metrics",
    "merge_hub_dicts",
    "perfetto_trace",
    "read_fleet_events",
    "read_telemetry_sidecars",
    "render_prometheus",
    "set_current_trace",
    "size_class_labels",
    "size_class_of",
    "stitch_store",
    "telemetry_dir_for",
    "telemetry_path_for",
    "validate_trace",
    "write_campaign_telemetry",
    "write_perfetto",
    "write_telemetry_sidecar",
]
