"""The single histogram/binning implementation for the whole repo.

Both the metrics layer (requeue histograms, wait-by-size-class tables)
and the telemetry registry (:mod:`repro.observability.hub`) need the
same two primitives — a fixed-bucket histogram and integer size-class
binning — and previously each grew its own inline copy.  This module
is the one implementation; :mod:`repro.metrics` re-exports it.

Everything here is pure data manipulation: no clocks, no I/O, no
randomness, so histograms are safe to carry inside snapshots and to
merge across campaign workers.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Mapping

from repro.errors import ConfigError

#: Default bucket upper bounds for durations in seconds: sub-second,
#: seconds, minutes, quarter/one/four hours, one day.  The last bucket
#: is the implicit +inf overflow.
DEFAULT_SECONDS_EDGES: tuple[float, ...] = (
    1.0, 10.0, 60.0, 300.0, 900.0, 3600.0, 14_400.0, 86_400.0,
)


class Histogram:
    """Fixed-bucket histogram with exact count/sum side channels.

    ``edges`` are the *upper* bounds of the finite buckets (ascending);
    an observation lands in the first bucket whose edge is >= value,
    or in the trailing overflow bucket.  Merging requires identical
    edges — merged histograms from campaign workers stay exact.
    """

    __slots__ = ("edges", "counts", "count", "total")

    def __init__(self, edges: Iterable[float] = DEFAULT_SECONDS_EDGES) -> None:
        self.edges: tuple[float, ...] = tuple(float(e) for e in edges)
        if not self.edges:
            raise ConfigError("histogram needs at least one bucket edge")
        if list(self.edges) != sorted(set(self.edges)):
            raise ConfigError(
                f"histogram edges must be strictly ascending, got {self.edges}"
            )
        #: One count per finite bucket plus the overflow bucket.
        self.counts: list[int] = [0] * (len(self.edges) + 1)
        self.count: int = 0
        self.total: float = 0.0

    def observe(self, value: float) -> None:
        """Record one observation (O(log buckets)).

        ``bisect_left`` finds the first bucket whose upper edge is
        >= value; values beyond the last edge land in the overflow
        bucket at index ``len(edges)``.
        """
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value

    def merge(self, other: "Histogram") -> None:
        """Fold *other* into this histogram (edges must match)."""
        if other.edges != self.edges:
            raise ConfigError(
                f"cannot merge histograms with different edges: "
                f"{self.edges} vs {other.edges}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.total += other.total

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form (stable keys; lossless for :meth:`from_dict`)."""
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Histogram":
        hist = cls(data["edges"])  # type: ignore[arg-type]
        counts = list(data["counts"])  # type: ignore[call-overload]
        if len(counts) != len(hist.counts):
            raise ConfigError(
                f"histogram payload has {len(counts)} counts for "
                f"{len(hist.counts)} buckets"
            )
        hist.counts = [int(c) for c in counts]
        hist.count = int(data.get("count", sum(hist.counts)))  # type: ignore[arg-type]
        hist.total = float(data.get("sum", 0.0))  # type: ignore[arg-type]
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={self.count}, mean={self.mean:.3f})"


def count_histogram(values: Iterable[int]) -> dict[str, int]:
    """Exact count-per-value histogram with JSON-safe string keys.

    Keys are sorted numerically (``{"0": n0, "1": n1, ...}``) — the
    shape the resilience report's requeue histogram has always used.
    """
    histogram: dict[str, int] = {}
    for value in values:
        key = str(value)
        histogram[key] = histogram.get(key, 0) + 1
    return {key: histogram[key] for key in sorted(histogram, key=int)}


def size_class_labels(boundaries: tuple[int, ...]) -> list[str]:
    """Human labels for integer size classes split at *boundaries*.

    ``boundaries=(2, 8)`` yields ``["1-2", "3-8", "9+"]`` — the exact
    labels the wait-by-size-class table (figure E6) has always printed.
    """
    edges = (0,) + tuple(boundaries) + (10**9,)
    labels = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        labels.append(f"{lo + 1}-{hi}" if hi < 10**9 else f"{lo + 1}+")
    return labels


def size_class_of(value: int, boundaries: tuple[int, ...]) -> str:
    """The size-class label *value* falls into."""
    edges = (0,) + tuple(boundaries) + (10**9,)
    labels = size_class_labels(boundaries)
    for label, lo, hi in zip(labels, edges[:-1], edges[1:]):
        if lo < value <= hi:
            return label
    raise ConfigError(f"value {value} outside every size class")
