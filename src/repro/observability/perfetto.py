"""Chrome/Perfetto trace export: the nodes×jobs timeline as trace.json.

Builds a `Trace Event Format`_ document from a finished
:class:`~repro.slurm.manager.SimulationResult`:

* **pid 1 "cluster"** — one thread per (node, SMT lane); every job
  becomes a complete ("X") event on each node it occupied, so the
  Perfetto UI shows the machine as stacked per-node swimlanes with
  co-allocated jobs side by side on a node's two lanes.
* **pid 2 "scheduler"** — instant ("i") events from the decision
  trace (scheduler passes, accepts, coded rejects, lifecycle edges),
  when one is supplied.

The export is a pure function of the accounting log and the decision
records — both deterministic — so traces are byte-identical across
serial/parallel campaigns, and pids/tids are stable across
suspend/resume (asserted by the test suite).  Timestamps are
simulated seconds scaled to microseconds, the unit the format
expects.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.observability.trace import DecisionTrace
    from repro.slurm.manager import SimulationResult

#: Trace process ids (fixed, so every exported trace reads the same).
CLUSTER_PID = 1
SCHEDULER_PID = 2

#: Threads per node reserved in the tid encoding.  SMT exposes two
#: lanes; the headroom covers any future deeper sharing without
#: changing existing tids.
_LANE_SLOTS = 4

#: Scheduler-track tids by decision record type.
_SCHEDULER_TIDS = {"span": 1, "accept": 2, "reject": 3, "lifecycle": 4, "event": 5}


def _usec(t: float) -> int:
    return int(round(t * 1e6))


def _job_events(result: "SimulationResult") -> tuple[list[dict], set[tuple[int, int]]]:
    """Complete events for every job on every node it ran on.

    Lane assignment is greedy and deterministic: records sorted by
    (start, job id); per node, a job takes the lowest lane that is
    free at its start time.  Because allocations are exclusive or
    two-way shared, two lanes always suffice; extra slots are headroom.
    """
    events: list[dict] = []
    used: set[tuple[int, int]] = set()  # (node_id, lane)
    lane_ends: dict[int, list[float]] = {}
    records = sorted(
        (r for r in result.accounting if r.node_ids),
        key=lambda r: (r.start_time, r.job_id),
    )
    for record in records:
        for node_id in record.node_ids:
            lanes = lane_ends.setdefault(node_id, [])
            lane = None
            for index, busy_until in enumerate(lanes):
                if busy_until <= record.start_time:
                    lane = index
                    break
            if lane is None:
                lane = len(lanes)
                lanes.append(record.end_time)
            else:
                lanes[lane] = record.end_time
            lane = min(lane, _LANE_SLOTS - 1)
            tid = node_id * _LANE_SLOTS + lane + 1
            used.add((node_id, lane))
            events.append({
                "name": f"job {record.job_id} ({record.app or 'unknown'})",
                "cat": "job",
                "ph": "X",
                "ts": _usec(record.start_time),
                "dur": max(_usec(record.end_time) - _usec(record.start_time), 0),
                "pid": CLUSTER_PID,
                "tid": tid,
                "args": {
                    "job": record.job_id,
                    "app": record.app,
                    "state": record.state.value,
                    "shared": record.was_shared,
                    "num_nodes": record.num_nodes,
                    "requeues": record.requeues,
                },
            })
    return events, used


def _scheduler_events(records: Iterable[Mapping[str, object]]) -> list[dict]:
    """Instant events for the scheduler decision track."""
    events: list[dict] = []
    for record in records:
        record_type = str(record.get("type", "event"))
        tid = _SCHEDULER_TIDS.get(record_type, 5)
        if record_type == "reject":
            name = f"reject {record.get('stage')}: {record.get('code')}"
        elif record_type == "accept":
            name = f"accept {record.get('kind')} job {record.get('job')}"
        elif record_type == "span":
            name = str(record.get("name", "pass"))
        elif record_type == "lifecycle":
            name = f"job {record.get('job')} {record.get('state')}"
        else:
            name = str(record.get("name", record_type))
        args = {
            k: v for k, v in record.items() if k not in ("t", "type")
        }
        events.append({
            "name": name,
            "cat": record_type,
            "ph": "i",
            "s": "t",
            "ts": _usec(float(record.get("t", 0.0))),  # type: ignore[arg-type]
            "pid": SCHEDULER_PID,
            "tid": tid,
            "args": args,
        })
    return events


def _metadata(used_lanes: set[tuple[int, int]], with_scheduler: bool) -> list[dict]:
    events: list[dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": CLUSTER_PID,
        "args": {"name": "cluster"},
    }]
    for node_id, lane in sorted(used_lanes):
        tid = node_id * _LANE_SLOTS + lane + 1
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": CLUSTER_PID,
            "tid": tid,
            "args": {"name": f"node {node_id} lane {lane}"},
        })
        events.append({
            "name": "thread_sort_index",
            "ph": "M",
            "pid": CLUSTER_PID,
            "tid": tid,
            "args": {"sort_index": tid},
        })
    if with_scheduler:
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": SCHEDULER_PID,
            "args": {"name": "scheduler"},
        })
        for track, tid in sorted(_SCHEDULER_TIDS.items(), key=lambda kv: kv[1]):
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": SCHEDULER_PID,
                "tid": tid,
                "args": {"name": track},
            })
    return events


def perfetto_trace(
    result: "SimulationResult",
    decisions: "DecisionTrace | Iterable[Mapping[str, object]] | None" = None,
) -> dict:
    """Build the complete Trace Event Format document."""
    job_events, used_lanes = _job_events(result)
    decision_records: Iterable[Mapping[str, object]] = ()
    if decisions is not None:
        decision_records = getattr(decisions, "records", decisions)
    scheduler_events = _scheduler_events(decision_records)
    events = _metadata(used_lanes, with_scheduler=bool(scheduler_events))
    events.extend(job_events)
    events.extend(scheduler_events)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "strategy": result.strategy,
            "cluster_nodes": result.cluster_nodes,
            "jobs": len(result.accounting),
            "makespan_s": result.makespan,
        },
    }


def write_perfetto(
    path: str | Path,
    result: "SimulationResult",
    decisions: "DecisionTrace | Iterable[Mapping[str, object]] | None" = None,
) -> Path:
    """Export *result* as a Perfetto-loadable ``trace.json``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = perfetto_trace(result, decisions)
    path.write_text(
        json.dumps(document, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def validate_trace(document: Mapping[str, object]) -> list[str]:
    """Structural validation of an exported trace document.

    Returns a list of problems (empty = valid): required keys present,
    every event carries a known phase with sane timestamps, and the
    complete events on each (pid, tid) track are non-overlapping —
    the "well-nested" property our flat per-lane tracks must have.
    Used by the export tests and the CI smoke job.
    """
    problems: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    tracks: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for index, event in enumerate(events):
        if not isinstance(event, Mapping):
            problems.append(f"event {index} is not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "i", "M", "B", "E", "C"):
            problems.append(f"event {index} has unknown phase {phase!r}")
            continue
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, int) or ts < 0:
            problems.append(f"event {index} has bad ts {ts!r}")
            continue
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, int) or duration < 0:
                problems.append(f"event {index} has bad dur {duration!r}")
                continue
            key = (int(event.get("pid", 0)), int(event.get("tid", 0)))  # type: ignore[arg-type]
            tracks.setdefault(key, []).append((ts, ts + duration))
    for key, spans in tracks.items():
        spans.sort()
        for (_, prev_end), (next_start, _) in zip(spans, spans[1:]):
            if next_start < prev_end:
                problems.append(
                    f"overlapping complete events on pid/tid {key}"
                )
                break
    return problems
