"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Generate a Trinity campaign (or read an SWF trace) and simulate it
    under one strategy; prints the schedule summary and final
    ``sacct``-style accounting (``--json`` for machine-readable
    output).
``compare``
    Run the same workload under several strategies and print the
    headline comparison table (``--json`` available).
``experiment``
    Regenerate one of the paper's tables/figures by id — every
    registered driver, ``e1``..``e24`` except the ``e11``
    microbenchmark (``repro experiment list`` enumerates them).
    Sweep-style experiments accept ``--workers N`` to parallelise.
``campaign``
    Expand a declarative campaign (grid axes × named experiments)
    into content-addressed runs and execute them on a process pool
    with caching, retry and checkpoint/resume; results land in an
    artifact store plus a JSONL file.  Campaigns are preemption-safe:
    SIGTERM/SIGINT checkpoints in-flight runs and exits with status 4.
    With ``--join`` the runs become durable queue items under
    ``<store>/.queue/`` drained by a cooperating worker fleet
    (leases, heartbeats, fencing tokens; crashed workers' runs are
    reclaimed automatically) — additional ``repro queue work``
    processes may join the same store at any time.
``resume``
    Restart a suspended (or otherwise interrupted) campaign from its
    store: re-reads the recorded spec and settings, resumes each
    checkpointed run from its snapshot and executes whatever else is
    missing.  A campaign recorded with ``--join`` resumes as a queue
    drain.
``queue``
    Inspect or drain a store's durable work queue: ``queue status
    <store>`` prints the item/lease census with per-lease heartbeat
    ages (``--json`` available; ``--watch SECONDS`` refreshes until
    the queue drains — one census pass per tick, the same
    ``WorkQueue.status()`` codepath the service's ``/readyz``
    aggregates); ``queue work <store>`` runs one cooperative drain
    worker — claim, heartbeat, execute, commit — until the queue is
    empty (exit 0) or a SIGTERM/RSS trip parks its lease (exit 4);
    ``queue metrics <store>`` renders the fleet event sidecars
    (``.queue/metrics/*.events.jsonl``, appended at every lifecycle
    boundary through the ``queue.metrics.write`` failpoint) as
    Prometheus text — the offline twin of the server's
    ``GET /metrics`` (``--json`` for the raw aggregate document).
``top``
    Live fleet dashboard over one store (stdlib ANSI redraw, no
    curses): queue census, per-worker throughput, lease heartbeat
    ages, quarantine/shed counts and a drain ETA, refreshed from the
    same event sidecars ``queue metrics`` reads.  ``--once`` prints
    a single frame; ``--json`` emits the frame document for scripts.
    Exits 0 when the queue drains.
``serve``
    Serve campaign submissions over HTTP (stdlib asyncio; see
    DESIGN.md §11): ``POST /v1/campaigns`` accepts a campaign spec
    and enqueues it as durable queue items in a content-addressed
    per-submission store (an ``Idempotency-Key`` header deduplicates
    client retries at the commit boundary — one key, one executed
    submission), ``GET /v1/campaigns/<id>`` polls progress,
    ``.../events`` streams it as heartbeated server-sent events,
    ``.../results`` returns the drained ``results.jsonl``;
    ``/healthz``–``/readyz`` expose admission/shed accounting and
    the aggregate queue census; ``GET /metrics`` serves the same
    accounting plus the fleet SLO histograms as Prometheus text
    (scraped off-loop, past admission, so a poll is never shed and
    never stalls an SSE stream).  Overload beyond the bounded accept
    queue is shed with ``429 Retry-After``; request deadlines answer
    ``503`` without abandoning durable work; SIGTERM drains (stop
    accepting → finish in-flight → park the worker fleet's leases →
    exit 4).  The server is a thin front-end over the same stores
    ``campaign --join`` writes — a server crash loses nothing that
    was accepted, and the drained store is byte-identical to a
    CLI-produced one.
``replay``
    Re-execute a crash replay bundle (written automatically when a
    run fails under ``campaign --bundle-dir``, or by any crash with
    diagnostics armed) and verify the recorded failure reproduces.
``trace``
    Export a Chrome/Perfetto ``trace.json`` — either by re-executing
    a stored campaign run record (deterministic, so the exported
    schedule is exactly the one the campaign stored) or by simulating
    a workload described by the usual flags.  With ``--stitched`` the
    positional argument is a *store* directory instead: the fleet
    event sidecars are stitched into one distributed trace of the
    whole campaign — submission spans (pid 3), lease tenures with
    zombie claims marked superseded by their fencing token (pid 4),
    and per-worker execution lanes (pid 5).  Load the output at
    https://ui.perfetto.dev or ``chrome://tracing``.
``stats``
    Aggregate a campaign store: per-strategy summary rows, folded-in
    telemetry sidecars (wall-clock, resumes) and quarantine counts.
    Detects columnar replay stores and streams them without loading
    per-run JSON; ``--format csv|json`` for machine-readable output.
``synth``
    Write a seeded synthetic SWF trace (Poisson arrivals at a target
    load, log-normal runtimes) — deterministic bytes per seed, for
    archive-scale tests and benchmarks without shipping trace files.
``ingest``
    Stream an SWF trace (constant memory, lenient quarantine) into a
    replayable window archive: per-window record files plus a
    content-hashed manifest with boundary and carried-job metadata.
``replay-trace``
    Replay an ingested archive window by window: each window is a
    cached campaign run stitched to the next through a boundary
    snapshot, with per-job results streamed to a columnar store.
    Byte-identical to a monolithic simulation of the same trace.
    ``--strategies a b c`` fans the independent per-strategy window
    chains out as queue items drained by ``--workers`` processes.
``fsck``
    Check a campaign/replay store, columnar store or ingested
    archive against its on-disk invariants: records match their
    content hashes, the columnar manifest fits its column files,
    idempotence marks cohere, snapshot checksums verify, and
    ``stitched.json`` agrees with a fresh recompute.
``chaos``
    Crash-consistency torture sweep: run a small campaign and/or a
    windowed synthetic replay in subprocesses, hard-kill each one at
    every registered failpoint in turn, re-run it disarmed, and
    require the recovered stores to pass ``fsck`` and be
    byte-identical to a fault-free baseline.  ``--workload serve``
    drives the HTTP service the same way, killing it mid-submission
    (``service.submit.write``, ``service.manifest.write``), at the
    idempotency-key commit point (``service.key.write``) and
    mid-SSE-stream (``service.stream.write``).  ``--workload queue``
    also covers the observability plane: a kill mid-append at
    ``queue.metrics.write`` must leave a store that recovers
    fsck-clean (torn sidecar tail tolerated) and byte-identical.
``matrix``
    Print the mini-app pairwise co-run matrix.

Exit codes
----------
This table is the single authority for every ``repro`` command.

=== ==========================================================
0   success (for ``replay``: the recorded crash reproduced; for
    ``fsck``: every invariant holds; for ``chaos``: every
    injected fault recovered or was not reachable; for ``top``:
    the watched queue drained — or the frame printed, with
    ``--once``/``--json``)
1   error — a run/replay failed, ``fsck`` found invariant
    violations, or a ``chaos`` trial failed to recover;
    structured JSON on stderr for escaped errors
2   usage or configuration error (for ``fsck``: the path is not
    a repro store or archive; for ``resume``: a missing or
    unreadable store manifest, reported as structured JSON on
    stderr; for ``serve``: a bind failure or stale/live
    ``service.json``)
3   campaign partial success: some runs completed, others
    failed or were quarantined (details on stderr); also a
    ``--join`` drain that finished with terminal ``failed/`` or
    ``quarantined/`` queue items
4   campaign suspended: a graceful shutdown checkpointed the
    in-flight runs; ``repro resume <store>`` continues them.
    For ``queue work``: this worker parked its lease (SIGTERM
    drain or RSS shed) — the queue itself remains drainable and
    any other worker (or ``repro resume``) picks the run back up.
    For ``serve``: a SIGTERM/SIGINT drain completed (accepted
    submissions stay durable; restart the server to continue)
86  a ``chaos``-armed failpoint hard-killed the process at the
    injected fault (``EXIT_FAILPOINT_KILL``; only ever seen
    inside chaos trials or with ``REPRO_FAILPOINTS`` armed)
130 interrupted (the conventional 128+SIGINT status; raised by
    a second/third Ctrl-C that escalates past graceful shutdown)
141 a downstream pipe closed early (the conventional 128+SIGPIPE
    status, e.g. ``repro stats ... | head``); applies to every
    command, ``fsck`` and ``chaos`` included
=== ==========================================================
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.analysis import experiments as exp
from repro.core.strategy import all_strategy_names
from repro.errors import ReproError
from repro.metrics.report import format_comparison, format_json, format_table
from repro.metrics.summary import summarize
from repro.slurm.config import SchedulerConfig
from repro.slurm.formats import sacct
from repro.slurm.manager import build_manager, run_simulation
from repro.workload.swf import read_swf, read_swf_header_apps
from repro.workload.trace import WorkloadTrace
from repro.workload.trinity import TrinityWorkloadGenerator


def _build_trace(args: argparse.Namespace) -> WorkloadTrace:
    if args.swf:
        apps = read_swf_header_apps(args.swf)
        return read_swf(args.swf, cores_per_node=args.cores, app_names=apps)
    rng = np.random.default_rng(args.seed)
    generator = TrinityWorkloadGenerator(
        share_obeys_app=False,
        share_fraction=args.share_fraction,
        offered_load=args.load,
    )
    return generator.generate(args.jobs, args.nodes, rng)


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=300, help="jobs to generate")
    parser.add_argument("--nodes", type=int, default=128, help="cluster size")
    parser.add_argument("--seed", type=int, default=7, help="workload RNG seed")
    parser.add_argument(
        "--load", type=float, default=1.5, help="offered load (>=1 keeps a queue)"
    )
    parser.add_argument(
        "--share-fraction", type=float, default=0.85,
        help="probability a job permits node sharing",
    )
    parser.add_argument("--swf", type=str, default="",
                        help="replay this SWF trace instead of generating")
    parser.add_argument("--cores", type=int, default=32,
                        help="cores per node (SWF processor conversion)")


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "resilience", "failure injection and checkpoint/restart (off by default)"
    )
    group.add_argument("--mtbf-hours", type=float, default=0.0,
                       help="per-node MTBF in hours (0 = no node failures)")
    group.add_argument("--rack-mtbf-hours", type=float, default=0.0,
                       help="per-rack MTBF in hours (0 = no rack failures)")
    group.add_argument("--repair-hours", type=float, default=4.0,
                       help="node repair duration in hours")
    group.add_argument("--checkpoint", choices=("none", "periodic", "daly"),
                       default="none", help="checkpoint/restart policy")
    group.add_argument("--checkpoint-interval", type=float, default=3600.0,
                       help="periodic checkpoint interval (seconds)")
    group.add_argument("--checkpoint-overhead", type=float, default=60.0,
                       help="cost of one checkpoint write (seconds)")
    group.add_argument("--max-requeues", type=int, default=3,
                       help="requeues before a job fails terminally")
    group.add_argument("--blacklist-failures", type=int, default=0,
                       help="drain a node after N failures in 24h (0 = off)")
    group.add_argument("--failure-seed", type=int, default=0,
                       help="failure-injection RNG seed")


#: Campaign exit status when some runs succeeded and others failed or
#: were quarantined (documented in the module docstring).
EXIT_PARTIAL = 3

#: Campaign exit status after a graceful shutdown: in-flight runs were
#: checkpointed and ``repro resume <store>`` continues the campaign.
EXIT_SUSPENDED = 4

#: Conventional 128+SIGINT exit status for a hard interrupt.
EXIT_INTERRUPTED = 130

#: Conventional 128+SIGPIPE status when a downstream pipe closes
#: early; handled centrally in :func:`main` for every command.
EXIT_SIGPIPE = 141


def _add_diagnostics_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "diagnostics", "crash diagnostics and watchdogs (inert by default)"
    )
    group.add_argument("--wall-clock-limit", type=float, default=0.0,
                       help="abort when one run() call exceeds this many "
                            "real seconds (0 = no watchdog)")
    group.add_argument("--stall-limit", type=int, default=0,
                       help="abort after N events without simulated time "
                            "advancing (0 = no watchdog)")
    group.add_argument("--max-events", type=int, default=0,
                       help="override the event dispatch ceiling (0 = default)")
    group.add_argument("--no-flight-recorder", action="store_true",
                       help="disable the crash flight recorder")
    group.add_argument("--ring-size", type=int, default=256,
                       help="flight recorder ring buffer capacity")


def _diagnostics_from_args(args: argparse.Namespace):
    from repro.diagnostics import DiagnosticsConfig

    return DiagnosticsConfig(
        flight_recorder=not args.no_flight_recorder,
        ring_size=args.ring_size,
        wall_clock_limit_s=(
            args.wall_clock_limit if args.wall_clock_limit > 0 else None
        ),
        stall_event_limit=args.stall_limit if args.stall_limit > 0 else None,
        max_events=args.max_events if args.max_events > 0 else None,
    )


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "telemetry",
        "metrics, decision tracing and profiling (purely observational: "
        "simulation results are byte-identical with telemetry on or off)",
    )
    group.add_argument("--telemetry", action="store_true",
                       help="arm the metrics hub and decision trace")
    group.add_argument("--profile", action="store_true",
                       help="attribute wall-clock to event types and "
                            "scheduler phases (implies --telemetry)")
    group.add_argument("--trace-out", default="", metavar="PATH",
                       help="write a Chrome/Perfetto trace JSON here "
                            "(implies --telemetry)")
    group.add_argument("--decisions-out", default="", metavar="PATH",
                       help="append decision records as JSONL here "
                            "(implies --telemetry)")


def _telemetry_from_args(args: argparse.Namespace):
    """Build a TelemetryConfig from CLI flags, or None when inert."""
    armed = (
        args.telemetry
        or args.profile
        or bool(args.trace_out)
        or bool(args.decisions_out)
    )
    if not armed:
        return None
    from repro.observability import TelemetryConfig

    return TelemetryConfig(
        enabled=True,
        decisions=True,
        profile=args.profile,
        decisions_path=args.decisions_out or None,
    )


def _resilience_from_args(args: argparse.Namespace):
    """Build a ResilienceConfig from CLI flags, or None when inert."""
    if (
        args.mtbf_hours <= 0
        and args.rack_mtbf_hours <= 0
        and args.checkpoint == "none"
    ):
        return None
    from repro.resilience import ResilienceConfig

    return ResilienceConfig(
        node_mtbf_hours=args.mtbf_hours if args.mtbf_hours > 0 else None,
        rack_mtbf_hours=(
            args.rack_mtbf_hours if args.rack_mtbf_hours > 0 else None
        ),
        repair_hours=args.repair_hours,
        checkpoint=args.checkpoint,
        checkpoint_interval_s=args.checkpoint_interval,
        checkpoint_overhead_s=args.checkpoint_overhead,
        max_requeues=args.max_requeues,
        blacklist_failures=(
            args.blacklist_failures if args.blacklist_failures > 0 else None
        ),
        seed=args.failure_seed,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    trace = _build_trace(args)
    config = SchedulerConfig(
        strategy=args.strategy,
        share_threshold=args.threshold,
        resilience=_resilience_from_args(args),
        diagnostics=_diagnostics_from_args(args),
    )
    telemetry = _telemetry_from_args(args)
    if telemetry is not None:
        config.telemetry = telemetry
    manager = build_manager(
        trace, num_nodes=args.nodes, strategy=args.strategy, config=config
    )
    result = manager.run()
    summary = summarize(result)
    if args.trace_out:
        from repro.observability import write_perfetto

        written = write_perfetto(args.trace_out, result, manager.decisions)
        print(f"trace: {written}", file=sys.stderr)
    if args.json:
        payload = {
            "command": "run",
            "strategy": args.strategy,
            "nodes": args.nodes,
            "workload": trace.name,
            "jobs": len(trace),
            "summary": summary.as_dict(),
            "makespan_s": result.makespan,
            "mean_wait_s": summary.mean_wait,
            # Wall-clock provenance: nondeterministic by nature, so it
            # lives here in the CLI payload, never in store records.
            "execution": {
                "wall_clock_s": float(result.wallclock_seconds),
                "resume_count": int(getattr(manager, "resume_count", 0)),
                "restore_wall_s": float(
                    getattr(manager, "restore_wall_s", 0.0)
                ),
            },
        }
        if result.resilience is not None:
            payload["resilience"] = result.resilience.as_dict()
        telemetry_sections = manager.telemetry_summary()
        if telemetry_sections is not None:
            profile = telemetry_sections.pop("profile", None)
            payload["telemetry"] = telemetry_sections
            if profile is not None:
                payload["profile"] = profile
        print(format_json(payload))
        return 0
    print(format_table([summary.as_dict()], title=f"strategy: {args.strategy}"))
    if result.resilience is not None:
        print()
        print(format_table(
            [result.resilience.as_dict()], title="resilience"
        ))
    if manager.hot_profiler is not None:
        prof = manager.hot_profiler.as_dict()
        event_rows = [
            {"event": name, **stats}
            for name, stats in list(prof["events"].items())[:10]
        ]
        if event_rows:
            print()
            print(format_table(event_rows, title="hot events (wall-clock)"))
        phase_rows = [
            {"phase": name, **stats} for name, stats in prof["phases"].items()
        ]
        if phase_rows:
            print()
            print(format_table(phase_rows, title="scheduler phases"))
    if args.sacct:
        print()
        print(sacct(result.accounting, max_rows=args.sacct))
    if args.gantt:
        from repro.metrics.gantt import render_gantt, render_sparkline

        print()
        print(render_gantt(result, max_nodes=args.gantt))
        if result.collector is not None:
            print()
            print(render_sparkline(result.collector.timeline(),
                                   peak=args.nodes))
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    trace = _build_trace(args)
    summary = trace.summary()
    print(format_table([summary], title=f"workload: {trace.name}"))
    mix = trace.app_mix()
    if mix:
        rows = [{"app": app or "(unknown)", "jobs": count}
                for app, count in sorted(mix.items())]
        print()
        print(format_table(rows, title="application mix"))
    sizes: dict[int, int] = {}
    for job in trace:
        sizes[job.num_nodes] = sizes.get(job.num_nodes, 0) + 1
    print()
    print(format_table(
        [{"nodes": n, "jobs": c} for n, c in sorted(sizes.items())],
        title="size histogram",
    ))
    print(f"\noffered load on {args.nodes} nodes: "
          f"{trace.offered_load(args.nodes):.3f}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    trace = _build_trace(args)
    strategies = args.strategies or list(all_strategy_names())
    resilience = _resilience_from_args(args)
    summaries = []
    reports = []
    for strategy in strategies:
        config = None
        if resilience is not None:
            config = SchedulerConfig(strategy=strategy, resilience=resilience)
        result = run_simulation(
            trace, num_nodes=args.nodes, strategy=strategy, config=config
        )
        summaries.append(summarize(result))
        reports.append(result.resilience)
    if args.json:
        payload = {
            "command": "compare",
            "baseline": args.baseline,
            "nodes": args.nodes,
            "workload": trace.name,
            "jobs": len(trace),
            "summaries": [s.as_dict() for s in summaries],
        }
        if resilience is not None:
            payload["resilience"] = {
                strategy: report.as_dict() if report is not None else None
                for strategy, report in zip(strategies, reports)
            }
        print(format_json(payload))
        return 0
    print(format_comparison(summaries, baseline=args.baseline))
    if resilience is not None:
        rows = [
            {"strategy": strategy, **report.as_dict()}
            for strategy, report in zip(strategies, reports)
            if report is not None
        ]
        if rows:
            print()
            print(format_table(rows, title="resilience"))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    experiment_id = args.id.lower()
    if experiment_id == "list":
        for eid in exp.experiment_ids():
            parallel = " (supports --workers)" if eid in exp.PARALLEL_EXPERIMENTS else ""
            doc = (exp.EXPERIMENT_REGISTRY[eid].__doc__ or "").strip()
            first_line = doc.splitlines()[0] if doc else ""
            print(f"{eid:>4}  {first_line}{parallel}")
        return 0
    driver = exp.EXPERIMENT_REGISTRY.get(experiment_id)
    if driver is None:
        print(
            f"unknown experiment {args.id!r}; choose from "
            f"{exp.experiment_ids()}",
            file=sys.stderr,
        )
        return 2
    kwargs = {}
    if args.workers > 1 and experiment_id in exp.PARALLEL_EXPERIMENTS:
        kwargs["workers"] = args.workers
    output = driver(**kwargs)
    if args.json:
        print(format_json({
            "command": "experiment",
            "experiment": output.experiment,
            "rows": output.rows,
        }))
        return 0
    print(output.text)
    return 0


def _campaign_settings_from_args(args: argparse.Namespace) -> dict[str, object]:
    """Execution settings in manifest form (what ``resume`` re-reads)."""
    return {
        "workers": args.workers,
        "timeout": args.timeout,
        "retries": args.retries,
        "backoff": args.backoff,
        "quarantine_after": args.quarantine_after,
        "bundle_dir": args.bundle_dir,
        "snapshot_dir": args.snapshot_dir,
        "snapshot_every": args.snapshot_every,
        "rss_budget_mb": args.rss_budget_mb,
        "disk_min_free_mb": args.disk_min_free_mb,
        "telemetry": bool(args.telemetry),
    }


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignSpec

    try:
        if args.spec:
            spec = CampaignSpec.from_file(args.spec)
        else:
            spec = CampaignSpec(
                name=args.name,
                jobs=args.jobs,
                strategies=tuple(args.strategies)
                if args.strategies else ("easy_backfill", "shared_backfill"),
                seeds=tuple(args.seeds),
                loads=tuple(args.loads),
                share_fractions=tuple(args.share_fractions),
                share_thresholds=tuple(args.thresholds),
                cluster_sizes=tuple(args.sizes),
                experiments=tuple(args.experiments) if args.experiments else (),
            )
    except ReproError as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2
    store_dir = Path(args.store) if args.store else Path("campaign_runs") / spec.name
    if args.join:
        return _execute_campaign_join(
            spec,
            store_dir,
            _campaign_settings_from_args(args),
            workers=args.workers,
            quiet=args.quiet,
            jsonl=args.jsonl,
            no_jsonl=args.no_jsonl,
        )
    return _execute_campaign(
        spec,
        store_dir,
        _campaign_settings_from_args(args),
        quiet=args.quiet,
        progress_log=args.progress_log,
        jsonl=args.jsonl,
        no_jsonl=args.no_jsonl,
    )


def _usage_error(command: str, message: str, *, kind: str = "ConfigError") -> int:
    """Structured one-line JSON usage/config error on stderr, exit 2.

    The shape matches :func:`_structured_error` (plus the originating
    command) so scripted callers parse one format for every failure.
    """
    print(
        json.dumps(
            {"command": command, "error": kind, "message": message},
            sort_keys=True,
        ),
        file=sys.stderr,
    )
    return 2


def _cmd_resume(args: argparse.Namespace) -> int:
    from typing import Mapping as _Mapping

    from repro.campaign import CampaignSpec, ResultStore

    store_dir = Path(args.store)
    if not store_dir.is_dir():
        return _usage_error("resume", f"no such store {store_dir}")
    try:
        manifest = ResultStore(store_dir).read_manifest()
    except ReproError as exc:
        return _usage_error("resume", str(exc), kind=type(exc).__name__)
    settings_raw = manifest.get("settings", {})
    if not isinstance(settings_raw, _Mapping):
        return _usage_error(
            "resume",
            f"store manifest {store_dir / '.campaign.json'} has a "
            f"malformed settings section "
            f"({type(settings_raw).__name__}, expected object)",
        )
    settings = dict(settings_raw)
    if settings.get("queue") and not manifest.get("spec"):
        # A replay fan-out store: the queue items carry absolute paths
        # that only the original command knows how to regenerate.
        return _usage_error(
            "resume",
            "this store is a replay fan-out; re-run the original "
            "`repro replay-trace --strategies ...` command "
            "(completed chains are cached)",
        )
    try:
        spec = CampaignSpec.from_dict(manifest["spec"])  # type: ignore[arg-type]
    except (ReproError, KeyError, TypeError) as exc:
        return _usage_error("resume", str(exc), kind=type(exc).__name__)
    if args.workers > 0:
        settings["workers"] = args.workers
    if args.telemetry:
        settings["telemetry"] = True
    print(f"resuming campaign {spec.name!r} from {store_dir}", file=sys.stderr)
    if settings.get("queue"):
        workers = (
            args.workers if args.workers > 0 else max(1, os.cpu_count() or 1)
        )
        return _execute_campaign_join(
            spec,
            store_dir,
            settings,
            workers=workers,
            quiet=args.quiet,
            jsonl="",
            no_jsonl=args.no_jsonl,
        )
    return _execute_campaign(
        spec,
        store_dir,
        settings,
        quiet=args.quiet,
        progress_log=args.progress_log,
        jsonl="",
        no_jsonl=args.no_jsonl,
    )


def _execute_campaign(
    spec,
    store_dir: Path,
    settings: dict[str, object],
    *,
    quiet: bool,
    progress_log: str,
    jsonl: str,
    no_jsonl: bool,
) -> int:
    """Shared campaign executor behind ``campaign`` and ``resume``."""
    from repro.campaign import CampaignRunner, ResultStore
    from repro.campaign.progress import JsonlProgressLog, tee
    from repro.errors import ConfigError
    from repro.snapshot import ResourceGuards

    try:
        runs = spec.expand()
    except ReproError as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2
    store = ResultStore(store_dir)
    workers = int(settings.get("workers", 1) or 1)  # type: ignore[arg-type]
    timeout = float(settings.get("timeout", 0.0) or 0.0)  # type: ignore[arg-type]
    quarantine_after = int(settings.get("quarantine_after", 2) or 0)  # type: ignore[arg-type]
    bundle_dir = Path(str(settings.get("bundle_dir") or store_dir / "bundles"))
    snapshot_dir = Path(
        str(settings.get("snapshot_dir") or store_dir / "snapshots")
    )
    snapshot_every = str(settings.get("snapshot_every") or "")
    rss_budget = float(settings.get("rss_budget_mb", 0.0) or 0.0)  # type: ignore[arg-type]
    disk_min_free = float(settings.get("disk_min_free_mb", 0.0) or 0.0)  # type: ignore[arg-type]
    telemetry_dir = (
        store_dir / "telemetry" if settings.get("telemetry") else None
    )
    sinks = []
    if not quiet:
        sinks.append(lambda event: print(event.render(), file=sys.stderr))
    if progress_log:
        sinks.append(JsonlProgressLog(progress_log))
    try:
        guards = None
        if rss_budget > 0 or disk_min_free > 0:
            guards = ResourceGuards(
                rss_budget_mb=rss_budget if rss_budget > 0 else None,
                disk_min_free_mb=disk_min_free if disk_min_free > 0 else None,
                watch_path=store_dir,
            )
        # The manifest is what `repro resume <store>` reconstructs the
        # campaign from; refresh it before every execution.
        store.write_manifest({
            "manifest_version": 1,
            "name": spec.name,
            "spec": spec.to_dict(),
            "settings": settings,
        })
        runner = CampaignRunner(
            store=store,
            workers=workers,
            timeout=timeout if timeout > 0 else None,
            retries=int(settings.get("retries", 2)),  # type: ignore[arg-type]
            backoff=float(settings.get("backoff", 0.5)),  # type: ignore[arg-type]
            progress=tee(*sinks) if sinks else None,
            quarantine_after=(
                quarantine_after if quarantine_after > 0 else None
            ),
            bundle_dir=bundle_dir,
            snapshot_dir=snapshot_dir,
            snapshot_every=snapshot_every or None,
            telemetry_dir=telemetry_dir,
            guards=guards,
            install_signal_handlers=True,
        )
    except ReproError as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2
    try:
        outcome = runner.run(runs)
    except ConfigError as exc:
        # Most prominently: the store's advisory lock is held by a
        # concurrent campaign.
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        done = len(store.completed_ids() & {r.run_id for r in runs})
        print(
            f"\ninterrupted: {done} of {len(runs)} runs stored in "
            f"{store_dir}; `repro resume {store_dir}` continues",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    if not no_jsonl:
        jsonl_path = Path(jsonl) if jsonl else store_dir / "results.jsonl"
        written = store.export_jsonl(jsonl_path, run_ids=[r.run_id for r in runs])
        print(f"results: {written} records -> {jsonl_path}", file=sys.stderr)
    if telemetry_dir is not None and (store_dir / "telemetry.json").is_file():
        print(
            f"telemetry: {store_dir / 'telemetry.json'} "
            f"(`repro stats {store_dir}` aggregates)",
            file=sys.stderr,
        )

    grid_rows = []
    experiment_lines = []
    for record in outcome.records():
        payload = record["result"]
        params = record["params"]
        if payload["kind"] == "simulate":
            workload = params.get("workload", {})
            config = params.get("config", {})
            summary = payload["summary"]
            grid_rows.append({
                "run": record["run_id"][:8],
                "strategy": payload["strategy"],
                "nodes": payload["num_nodes"],
                "seed": workload.get("seed", ""),
                "load": workload.get("offered_load", ""),
                "theta": config.get("share_threshold", ""),
                "makespan_h": summary["makespan_h"],
                "comp_eff": summary["comp_eff"],
                "mean_wait_h": summary["mean_wait_h"],
                "shared_nodes": summary["shared_nodes"],
            })
        else:
            experiment_lines.append(
                f"{payload['experiment']}: {len(payload['rows'])} rows "
                f"({record['run_id']}.json)"
            )
    if grid_rows:
        print(format_table(grid_rows, title=f"campaign: {spec.name}"))
    for line in experiment_lines:
        print(line)
    counts = (
        f"{outcome.completed} executed, {outcome.cached} cached, "
        f"{outcome.failed} failed"
    )
    if outcome.quarantined:
        counts += f", {len(outcome.quarantined)} quarantined"
    if outcome.suspended:
        counts += f", {len(outcome.suspended)} suspended"
    status = (
        f"{counts} of {len(runs)} runs "
        f"in {outcome.elapsed_s:.1f}s (workers={workers}, "
        f"store={store_dir})"
    )
    print(status)
    if outcome.failures or outcome.quarantined:
        for failure in outcome.failures:
            print(
                f"FAILED {failure.run_id} ({failure.label}) after "
                f"{failure.attempts} attempts: {failure.error}",
                file=sys.stderr,
            )
        if outcome.quarantined:
            from repro.diagnostics import write_quarantine_manifest

            manifest = write_quarantine_manifest(
                store_dir / "quarantine.json", spec.name, outcome.quarantined
            )
            for poisoned in outcome.quarantined:
                bundle_note = (
                    f" (bundle: {poisoned.bundle})" if poisoned.bundle else ""
                )
                print(
                    f"QUARANTINED {poisoned.run_id} ({poisoned.label}) "
                    f"after {poisoned.incidents} incidents: "
                    f"{poisoned.error}{bundle_note}",
                    file=sys.stderr,
                )
            print(f"quarantine manifest: {manifest}", file=sys.stderr)
    if outcome.interrupted or outcome.suspended:
        for parked in outcome.suspended:
            snap_note = (
                f" (snapshot: {parked.snapshot})" if parked.snapshot else ""
            )
            print(
                f"SUSPENDED {parked.run_id} ({parked.label}){snap_note}",
                file=sys.stderr,
            )
        remaining = len(runs) - len(
            store.completed_ids() & {r.run_id for r in runs}
        )
        print(
            f"campaign suspended with {remaining} runs outstanding; "
            f"`repro resume {store_dir}` continues it",
            file=sys.stderr,
        )
        return EXIT_SUSPENDED
    if outcome.failures or outcome.quarantined:
        # Partial success (some results, some casualties) is
        # distinguishable from total failure for calling scripts.
        if outcome.completed or outcome.cached:
            return EXIT_PARTIAL
        return 1
    return 0


def _queue_config_from_settings(
    settings: dict[str, object], store_dir: Path
) -> dict[str, object]:
    """Translate campaign manifest settings into the queue's
    ``config.json`` so bare ``repro queue work <store>`` workers pick
    up the same retry/deadline/guard/sidecar behaviour the join parent
    was asked for."""
    bundle_dir = Path(str(settings.get("bundle_dir") or store_dir / "bundles"))
    snapshot_dir = Path(
        str(settings.get("snapshot_dir") or store_dir / "snapshots")
    )
    telemetry_dir = (
        store_dir / "telemetry" if settings.get("telemetry") else None
    )
    return {
        "retries": int(settings.get("retries", 2) or 0),
        "backoff": float(settings.get("backoff", 0.5) or 0.5),
        # The campaign's per-run timeout becomes the queue's deadline
        # budget: a run that exceeds it is quarantined, not retried.
        "deadline_s": float(settings.get("timeout", 0.0) or 0.0),
        "rss_budget_mb": float(settings.get("rss_budget_mb", 0.0) or 0.0),
        "disk_min_free_mb": float(
            settings.get("disk_min_free_mb", 0.0) or 0.0
        ),
        "bundle_dir": str(bundle_dir),
        "snapshot_dir": str(snapshot_dir),
        "snapshot_every": str(settings.get("snapshot_every") or "") or None,
        "telemetry_dir": str(telemetry_dir) if telemetry_dir else None,
        # Fleet event sidecars (observability plane); always on — they
        # live under .queue/, outside the byte-identity surface.
        "metrics": True,
    }


def _execute_campaign_join(
    spec,
    store_dir: Path,
    settings: dict[str, object],
    *,
    workers: int,
    quiet: bool,
    jsonl: str,
    no_jsonl: bool,
) -> int:
    """Queue-backed campaign executor behind ``campaign --join`` and a
    queue-recorded ``resume``: enqueue the runs as durable items, then
    supervise a cooperative worker fleet draining them."""
    from repro.campaign import ResultStore
    from repro.campaign.queue import WorkQueue, drain_with_workers
    from repro.snapshot import suspend as _suspend

    try:
        runs = spec.expand()
    except ReproError as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2
    store = ResultStore(store_dir)
    workers = max(1, int(workers))
    # The manifest drops the worker count: the fleet size is a property
    # of each invocation, not of the campaign, so joins with different
    # fleet sizes leave byte-identical stores.
    manifest_settings = {
        key: value for key, value in settings.items() if key != "workers"
    }
    manifest_settings["queue"] = True
    note = (
        None if quiet else (lambda line: print(line, file=sys.stderr))
    )
    try:
        store.write_manifest({
            "manifest_version": 1,
            "name": spec.name,
            "spec": spec.to_dict(),
            "settings": manifest_settings,
        })
        queue = WorkQueue(store_dir)
        queue.write_config(_queue_config_from_settings(settings, store_dir))
        queue.arm_events()
        # The trace id is the content hash of the campaign document —
        # the exact value the HTTP service uses as its submission id,
        # so a CLI join and a served submission of the same spec land
        # in the same distributed trace.
        from repro.campaign.spec import run_id_of

        trace_id = run_id_of({"kind": "campaign", "spec": spec.to_dict()})
        pending = queue.enqueue(
            runs,
            extras={run.run_id: {"trace": trace_id} for run in runs},
        )
        queue.events.emit(
            "submit", trace=trace_id, runs=len(runs), source="cli"
        )
    except ReproError as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2
    if note:
        note(
            f"queue: {pending} of {len(runs)} runs pending in "
            f"{store_dir / '.queue'}"
        )
    previous = _suspend.install_signal_handlers()
    try:
        outcome = drain_with_workers(store_dir, workers, note=note)
    except KeyboardInterrupt:
        done = len(store.completed_ids() & {r.run_id for r in runs})
        print(
            f"\ninterrupted: {done} of {len(runs)} runs stored in "
            f"{store_dir}; `repro resume {store_dir}` continues",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    finally:
        if previous is not None:
            _suspend.restore_signal_handlers(previous)
    # Final supervisor pass: reap anything the fleet left leased.
    queue.reclaim_stale()
    return _report_join(
        spec.name, store, queue, runs, outcome,
        jsonl=jsonl, no_jsonl=no_jsonl,
    )


def _report_join(
    name: str, store, queue, runs, outcome, *, jsonl: str, no_jsonl: bool
) -> int:
    """Render the post-drain report and map the queue's terminal state
    onto the documented campaign exit codes."""
    run_ids = [r.run_id for r in runs]
    done = store.completed_ids() & set(run_ids)
    if not no_jsonl:
        jsonl_path = Path(jsonl) if jsonl else store.root / "results.jsonl"
        written = store.export_jsonl(jsonl_path, run_ids=run_ids)
        print(f"results: {written} records -> {jsonl_path}", file=sys.stderr)
    grid_rows = []
    experiment_lines = []
    for run_id in run_ids:
        if not store.has(run_id):
            continue
        record = store.load(run_id)
        payload = record["result"]
        params = record["params"]
        if payload["kind"] == "simulate":
            workload = params.get("workload", {})
            config = params.get("config", {})
            summary = payload["summary"]
            grid_rows.append({
                "run": record["run_id"][:8],
                "strategy": payload["strategy"],
                "nodes": payload["num_nodes"],
                "seed": workload.get("seed", ""),
                "load": workload.get("offered_load", ""),
                "theta": config.get("share_threshold", ""),
                "makespan_h": summary["makespan_h"],
                "comp_eff": summary["comp_eff"],
                "mean_wait_h": summary["mean_wait_h"],
                "shared_nodes": summary["shared_nodes"],
            })
        elif payload["kind"] == "experiment":
            experiment_lines.append(
                f"{payload['experiment']}: {len(payload['rows'])} rows "
                f"({record['run_id']}.json)"
            )
    if grid_rows:
        print(format_table(grid_rows, title=f"campaign: {name}"))
    for line in experiment_lines:
        print(line)
    failed = queue.terminal_ids("failed")
    quarantined = queue.terminal_ids("quarantined")
    counts = f"{len(done)} stored, {len(failed)} failed"
    if quarantined:
        counts += f", {len(quarantined)} quarantined"
    print(
        f"{counts} of {len(runs)} runs (queue drain, "
        f"workers={outcome.workers}, respawns={outcome.respawns}, "
        f"store={store.root})"
    )
    for run_id in failed:
        doc = queue.read_terminal("failed", run_id)
        print(
            f"FAILED {run_id} ({doc.get('label', '')}) after "
            f"{doc.get('deliveries', '?')} deliveries: "
            f"{doc.get('error', '')}",
            file=sys.stderr,
        )
    for run_id in quarantined:
        doc = queue.read_terminal("quarantined", run_id)
        print(
            f"QUARANTINED {run_id} ({doc.get('label', '')}): "
            f"{doc.get('reason', '')}",
            file=sys.stderr,
        )
    if outcome.status == "suspended":
        remaining = len(runs) - len(done)
        print(
            f"campaign suspended with {remaining} runs outstanding; "
            f"`repro resume {store.root}` continues it",
            file=sys.stderr,
        )
        return EXIT_SUSPENDED
    if outcome.status == "stalled":
        print(
            f"queue drain stalled (respawn budget exhausted); "
            f"`repro queue status {store.root}` for the census",
            file=sys.stderr,
        )
        return 1
    if failed or quarantined:
        return EXIT_PARTIAL if done else 1
    return 0


def _render_queue_status(status: dict, *, as_json: bool, watching: bool) -> None:
    if as_json:
        if watching:
            # One compact JSON object per refresh — a parseable stream.
            print(json.dumps(status, sort_keys=True), flush=True)
        else:
            print(format_json(status))
        return
    heartbeat = (
        f", oldest heartbeat {status['heartbeat_age_max_s']:.1f}s"
        f"{' (' + str(status['stale']) + ' stale)' if status['stale'] else ''}"
        if status.get("leased")
        else ""
    )
    print(
        f"queue {status['store']}: {status['pending']} pending "
        f"({status['claimable']} claimable), {status['leased']} leased, "
        f"{status['completed']} completed, {status['failed']} failed, "
        f"{status['quarantined']} quarantined{heartbeat}",
        flush=True,
    )
    for lease in status["leases"]:
        mark = " STALE" if lease["stale"] else ""
        print(
            f"  lease {lease['run_id']}: held by "
            f"{lease['pid']}@{lease['host']} token {lease['token']} "
            f"(heartbeat {lease['heartbeat_age_s']:.1f}s ago){mark}"
        )


def _cmd_queue_status(args: argparse.Namespace) -> int:
    import time as _time

    from repro.campaign.queue import WorkQueue, has_queue
    from repro.errors import ConfigError

    store_dir = Path(args.store)
    if not has_queue(store_dir):
        print(
            f"queue error: {store_dir} has no work queue "
            f"(`repro campaign --join` creates one)",
            file=sys.stderr,
        )
        return 2
    queue = WorkQueue(store_dir)
    watching = args.watch > 0
    while True:
        try:
            status = queue.status()
        except ConfigError as exc:
            print(f"queue error: {exc}", file=sys.stderr)
            return 2
        _render_queue_status(status, as_json=args.json, watching=watching)
        # This census is the same WorkQueue.status() codepath the
        # service's /readyz aggregates — one source of truth.
        if not watching:
            return 0
        if not status["pending"] and not status["leased"]:
            return 0
        _time.sleep(args.watch)


def _cmd_queue_work(args: argparse.Namespace) -> int:
    from repro.campaign.queue import QueueWorker, has_queue
    from repro.errors import ConfigError

    store_dir = Path(args.store)
    if not has_queue(store_dir):
        print(
            f"queue error: {store_dir} has no work queue "
            f"(`repro campaign --join` creates one)",
            file=sys.stderr,
        )
        return 2
    note = (
        None if args.quiet else (lambda line: print(line, file=sys.stderr))
    )
    try:
        worker = QueueWorker(
            store_dir, install_signal_handlers=True, note=note
        )
        outcome = worker.drain()
    except ConfigError as exc:
        print(f"queue error: {exc}", file=sys.stderr)
        return 2
    print(
        f"worker {os.getpid()}: {outcome.completed} completed, "
        f"{outcome.failed} failed, {outcome.quarantined} quarantined, "
        f"{outcome.requeued} requeued, {outcome.fenced} fenced "
        f"({outcome.status})",
        file=sys.stderr,
    )
    return outcome.exit_code


def _require_queue(store_dir: Path) -> bool:
    from repro.campaign.queue import has_queue

    if has_queue(store_dir):
        return True
    print(
        f"queue error: {store_dir} has no work queue "
        f"(`repro campaign --join` creates one)",
        file=sys.stderr,
    )
    return False


def _cmd_queue_metrics(args: argparse.Namespace) -> int:
    from repro.observability.events import fleet_metrics, render_prometheus

    store_dir = Path(args.store)
    if not _require_queue(store_dir):
        return 2
    doc = fleet_metrics(store_dir)
    if args.json:
        print(format_json(doc))
    else:
        sys.stdout.write(render_prometheus(doc))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    from repro.campaign.queue import WorkQueue
    from repro.observability.events import fleet_metrics
    from repro.observability.top import ANSI_REDRAW, render_dashboard

    store_dir = Path(args.store)
    if not _require_queue(store_dir):
        return 2
    queue = WorkQueue(store_dir)
    single = args.once or args.json
    while True:
        census = queue.status()
        doc = fleet_metrics(store_dir, census=census)
        if args.json:
            print(format_json(doc))
        else:
            frame = render_dashboard(doc, title=f"repro top — {store_dir}")
            if not single:
                sys.stdout.write(ANSI_REDRAW)
            sys.stdout.write(frame)
            sys.stdout.flush()
        drained = not census["pending"] and not census["leased"]
        if single or drained:
            return 0
        _time.sleep(args.interval)


def _cmd_trace_stitched(args: argparse.Namespace) -> int:
    from repro.observability import stitch_store, validate_trace

    if not args.record:
        print(
            "trace error: --stitched needs a store directory "
            "(the positional argument)",
            file=sys.stderr,
        )
        return 2
    store_dir = Path(args.record)
    if not _require_queue(store_dir):
        return 2
    document = stitch_store(store_dir)
    spans = [
        e for e in document["traceEvents"] if e.get("ph") == "X"
    ]
    if not spans:
        print(
            f"trace error: no fleet events recorded under "
            f"{store_dir / '.queue' / 'metrics'} (was the queue drained "
            f"with metrics disabled?)",
            file=sys.stderr,
        )
        return 1
    problems = validate_trace(document)
    if problems:
        print(
            f"trace error: stitched document failed validation: "
            f"{problems[:3]}",
            file=sys.stderr,
        )
        return 1
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
    superseded = sum(
        1 for e in spans if e.get("args", {}).get("superseded")
    )
    print(
        f"stitched trace: {len(spans)} spans ({superseded} superseded) "
        f"across {len(document['otherData']['traces'])} submission "
        f"trace(s) -> {out}"
    )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.diagnostics import load_bundle, replay_bundle

    bundle = load_bundle(args.bundle)
    report = replay_bundle(bundle)
    if args.json:
        print(format_json(report.as_dict()))
    else:
        print(report.render())
    return 0 if report.reproduced else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.observability import TelemetryConfig, perfetto_trace

    if args.stitched:
        return _cmd_trace_stitched(args)
    if args.record:
        record_path = Path(args.record)
        try:
            record = json.loads(record_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"trace error: cannot read {record_path}: {exc}",
                  file=sys.stderr)
            return 2
        params = record.get("params") if isinstance(record, dict) else None
        if not isinstance(params, dict) or params.get("kind") != "simulate":
            print(
                f"trace error: {record_path} is not a campaign 'simulate' "
                f"run record",
                file=sys.stderr,
            )
            return 2
        # Deterministic re-execution: same params -> the exact schedule
        # the campaign stored, now with the decision trace armed.
        from repro.slurm.entry import _build_trace as build_campaign_trace

        strategy = str(params["strategy"])
        num_nodes = int(params["num_nodes"])
        config = SchedulerConfig(
            strategy=strategy, **dict(params.get("config", {}))
        )
        trace = build_campaign_trace(params["workload"])
    else:
        strategy = args.strategy
        num_nodes = args.nodes
        config = SchedulerConfig(
            strategy=strategy, share_threshold=args.threshold
        )
        trace = _build_trace(args)
    config.telemetry = TelemetryConfig(enabled=True, decisions=True)
    manager = build_manager(
        trace, num_nodes=num_nodes, strategy=strategy, config=config
    )
    result = manager.run()
    document = perfetto_trace(result, manager.decisions)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
    print(
        f"trace: {len(document['traceEvents'])} events "
        f"({strategy}, {num_nodes} nodes) -> {out}"
    )
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.archive import synth_swf
    from repro.errors import ConfigError

    try:
        result = synth_swf(
            args.out,
            jobs=args.jobs,
            nodes=args.nodes,
            seed=args.seed,
            load=args.load,
            share_fraction=args.share_fraction,
            cores_per_node=args.cores,
        )
    except ConfigError as exc:
        print(f"synth error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(format_json(result.as_dict()))
    else:
        print(
            f"synthesised {result.jobs} jobs over {result.span_s / 3600:.1f}h "
            f"({result.nodes} nodes, seed {result.seed}) -> {result.path}"
        )
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.archive import ingest_swf, load_archive

    try:
        result = ingest_swf(
            args.swf,
            args.out,
            window_jobs=args.window_jobs,
            chunk_jobs=args.chunk_jobs,
            cores_per_node=args.cores,
            mode=args.mode,
            max_procs=args.max_procs if args.max_procs > 0 else None,
            max_jobs=args.max_jobs if args.max_jobs > 0 else None,
        )
    except OSError as exc:
        print(f"ingest error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        document = result.as_dict()
        document["windows_detail"] = load_archive(args.out).windows
        print(format_json(document))
    else:
        print(
            f"ingested {result.jobs} jobs into {result.windows} windows "
            f"({result.quarantined} quarantined) -> {result.out_dir} "
            f"[archive {result.archive_id}]"
        )
    return 0


def _replay_trace_fanout(args: argparse.Namespace) -> int:
    """``replay-trace --strategies a b c``: each per-strategy window
    chain becomes one durable queue item (the chain's windows stay
    serial — a correctness requirement — while the independent
    strategies drain in parallel across the worker fleet)."""
    from repro.archive import load_archive
    from repro.campaign import ResultStore
    from repro.campaign.queue import WorkQueue, drain_with_workers
    from repro.campaign.spec import RunSpec
    from repro.errors import ConfigError
    from repro.snapshot import suspend as _suspend

    store_dir = Path(args.store)
    try:
        archive = load_archive(args.archive)
    except ConfigError as exc:
        print(f"replay-trace error: {exc}", file=sys.stderr)
        return 2
    config: dict[str, object] = {}
    if args.backfill_interval > 0:
        config["backfill_interval"] = float(args.backfill_interval)
    if args.threshold != 1.1:
        config["share_threshold"] = float(args.threshold)
    strategies = list(dict.fromkeys(args.strategies))
    runs = []
    extras: dict[str, dict[str, object]] = {}
    for strategy in strategies:
        params: dict[str, object] = {
            "kind": "replay_chain",
            "archive_id": archive.archive_id,
            "strategy": strategy,
            "num_nodes": int(args.nodes),
            "windows": len(archive),
        }
        if config:
            params["config"] = dict(config)
        run = RunSpec.from_params(params)
        runs.append(run)
        # Absolute paths ride outside the content hash: the chain's
        # identity is the archive id + plan, not where it lives.
        extras[run.run_id] = {
            "archive_dir": str(Path(args.archive).resolve()),
            "store_dir": str((store_dir / strategy).resolve()),
        }
    store = ResultStore(store_dir)
    note = (
        None if args.quiet else (lambda line: print(line, file=sys.stderr))
    )
    try:
        store.write_manifest({
            "manifest_version": 1,
            "name": f"replay-fanout:{archive.name}",
            "spec": None,
            "settings": {"queue": True, "kind": "replay_fanout"},
        })
        queue = WorkQueue(store_dir)
        queue.write_config({
            "retries": 0,
            "rss_budget_mb": float(args.rss_budget_mb or 0.0),
            "telemetry_dir": (
                str(store_dir / "telemetry") if args.telemetry else None
            ),
        })
        pending = queue.enqueue(runs)
    except ConfigError as exc:
        print(f"replay-trace error: {exc}", file=sys.stderr)
        return 2
    workers = (
        args.workers if args.workers > 0
        else min(len(strategies), max(1, os.cpu_count() or 1))
    )
    if note:
        note(
            f"fanout: {pending} strategy chains pending "
            f"({len(archive)} windows each), {workers} workers"
        )
    previous = _suspend.install_signal_handlers()
    try:
        outcome = drain_with_workers(store_dir, workers, note=note)
    finally:
        if previous is not None:
            _suspend.restore_signal_handlers(previous)
    queue.reclaim_stale()
    rows = []
    for run in runs:
        if not store.has(run.run_id):
            continue
        payload = store.load(run.run_id)["result"]
        stitched = payload.get("stitched", {})
        rows.append({
            "strategy": payload["strategy"],
            "windows": payload["windows"],
            "jobs": stitched.get("jobs", ""),
            "completed": stitched.get("completed", ""),
            "makespan_h": round(
                float(stitched.get("makespan_s", 0.0)) / 3600, 2
            ),
            "mean_wait_h": round(
                float(stitched.get("mean_wait_s", 0.0)) / 3600, 3
            ),
            "store": str(store_dir / str(payload["strategy"])),
        })
    if args.json:
        print(format_json({
            "archive": archive.archive_id,
            "strategies": strategies,
            "status": outcome.status,
            "chains": rows,
        }))
    elif rows:
        print(format_table(rows, title=f"replay fanout: {archive.name}"))
    failed = queue.terminal_ids("failed")
    quarantined = queue.terminal_ids("quarantined")
    for run_id in failed:
        doc = queue.read_terminal("failed", run_id)
        print(
            f"FAILED {run_id} ({doc.get('label', '')}): "
            f"{doc.get('error', '')}",
            file=sys.stderr,
        )
    for run_id in quarantined:
        doc = queue.read_terminal("quarantined", run_id)
        print(
            f"QUARANTINED {run_id}: {doc.get('reason', '')}",
            file=sys.stderr,
        )
    if outcome.status == "suspended":
        print(
            "fanout suspended; re-run the same command to continue "
            "(completed windows stay cached per strategy)",
            file=sys.stderr,
        )
        return EXIT_SUSPENDED
    if outcome.status == "stalled":
        print(
            f"fanout stalled (respawn budget exhausted); "
            f"`repro queue status {store_dir}` for the census",
            file=sys.stderr,
        )
        return 1
    if failed or quarantined:
        return EXIT_PARTIAL if rows else 1
    return 0


def _cmd_replay_trace(args: argparse.Namespace) -> int:
    from repro.archive import replay_archive
    from repro.errors import ConfigError
    from repro.snapshot import ResourceGuards

    if args.strategies:
        return _replay_trace_fanout(args)
    store_dir = Path(args.store)
    guards = None
    if args.rss_budget_mb > 0:
        store_dir.mkdir(parents=True, exist_ok=True)
        guards = ResourceGuards(
            rss_budget_mb=args.rss_budget_mb,
            watch_path=store_dir,
        )
    config: dict[str, object] = {}
    if args.backfill_interval > 0:
        config["backfill_interval"] = float(args.backfill_interval)
    if args.threshold != 1.1:
        config["share_threshold"] = float(args.threshold)
    progress = (
        None
        if args.quiet
        else (lambda event: print(event.render(), file=sys.stderr))
    )
    try:
        outcome = replay_archive(
            args.archive,
            store_dir,
            strategy=args.strategy,
            num_nodes=args.nodes,
            config=config or None,
            guards=guards,
            progress=progress,
            telemetry_dir=(store_dir / "telemetry" if args.telemetry else None),
            install_signal_handlers=True,
        )
    except ConfigError as exc:
        print(f"replay-trace error: {exc}", file=sys.stderr)
        return 2
    campaign = outcome.campaign
    if args.json:
        print(format_json({
            "chain": outcome.chain,
            "columnar": str(outcome.columnar),
            "windows": len(campaign.order),
            "executed": campaign.completed,
            "cached": campaign.cached,
            "failed": campaign.failed,
            "stitched": outcome.stitched,
        }))
    else:
        print(
            f"replayed {len(campaign.order)} windows "
            f"({campaign.completed} executed, {campaign.cached} cached, "
            f"{campaign.failed} failed) in {campaign.elapsed_s:.1f}s "
            f"[chain {outcome.chain}]"
        )
        if outcome.stitched is not None:
            s = outcome.stitched
            print(
                f"stitched: {s['jobs']} jobs, {s['completed']} completed, "
                f"makespan {float(s['makespan_s']) / 3600:.1f}h, "
                f"mean wait {float(s['mean_wait_s']) / 3600:.2f}h "
                f"(`repro stats {store_dir}` for detail)"
            )
    for failure in campaign.failures:
        print(
            f"FAILED {failure.run_id} ({failure.label}): {failure.error}",
            file=sys.stderr,
        )
    if campaign.interrupted or campaign.suspended:
        print(
            f"replay suspended; re-run the same command to continue "
            f"(completed windows are cached in {store_dir})",
            file=sys.stderr,
        )
        return EXIT_SUSPENDED
    if campaign.failures:
        return EXIT_PARTIAL if (campaign.completed or campaign.cached) else 1
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.campaign.backend import detect_backend
    from repro.errors import ConfigError

    fmt = "json" if args.json else args.format
    try:
        backend = detect_backend(args.store)
        if fmt == "json":
            print(format_json(backend.aggregate()))
            return 0
        rows = backend.summary_rows()
    except ConfigError as exc:
        print(f"stats error: {exc}", file=sys.stderr)
        return 2
    if fmt == "csv":
        import csv

        if rows:
            writer = csv.DictWriter(sys.stdout, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
        return 0
    # table
    document = backend.aggregate()
    if backend.name == "columnar":
        if rows:
            print(format_table(rows, title=f"replay store: {args.store}"))
        summary = document.get("summary", {})
        if isinstance(summary, dict):
            line = (
                f"{summary.get('jobs', 0)} jobs "
                f"({summary.get('completed', 0)} completed, "
                f"{summary.get('timeouts', 0)} timeouts) over "
                f"{int(summary.get('windows', 0))} windows; "
                f"makespan {float(summary.get('makespan_s', 0.0)) / 3600:.1f}h, "
                f"mean wait {float(summary.get('mean_wait_s', 0.0)) / 3600:.2f}h"
            )
            strategy = document.get("strategy")
            if strategy:
                line += f" [{strategy}]"
            print(line)
        return 0
    if rows:
        print(format_table(rows, title=f"campaign store: {args.store}"))
    counts = (
        f"{document['runs']} runs ({document['experiments']} experiments), "
        f"{document['quarantined']} quarantined"
    )
    telemetry = document.get("telemetry")
    if isinstance(telemetry, dict):
        exec_info = telemetry.get("exec", {})
        counts += (
            f"; telemetry: {telemetry.get('runs', 0)} sidecars, "
            f"{float(exec_info.get('wall_clock_s', 0.0)):.1f}s wall-clock, "
            f"{int(exec_info.get('resume_count', 0))} resumes"
        )
    print(counts)
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError
    from repro.faultinject.fsck import fsck_path

    try:
        report = fsck_path(args.store, repair=args.repair)
    except ConfigError as exc:
        print(f"fsck error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.as_dict(), sort_keys=True, indent=1))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.service import ServiceConfig
    from repro.service.server import serve_main

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        accept_backlog=args.accept_backlog,
        max_streams=args.max_streams,
        deadline_s=args.deadline_s,
        heartbeat_s=args.heartbeat_s,
        retry_after_s=args.retry_after,
        workers=args.workers,
        drain_grace_s=args.drain_grace_s,
    )
    if args.drive and config.workers < 1:
        # Drive mode streams to completion, which needs an executor.
        config = dataclasses.replace(config, workers=1)
    return serve_main(
        Path(args.root), config, drive_spec=args.drive, quiet=args.quiet
    )


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError
    from repro.faultinject.chaos import default_chaos_dir, run_chaos

    work_dir = args.dir or default_chaos_dir()
    if args.workload == "both":
        workloads = ["campaign", "replay"]
    elif args.workload == "all":
        workloads = ["campaign", "replay", "queue", "serve"]
    else:
        workloads = [args.workload]
    progress = None if args.quiet else (
        lambda line: print(line, file=sys.stderr)
    )
    reports = []
    try:
        for workload in workloads:
            reports.append(run_chaos(
                work_dir,
                workload=workload,
                workers=args.workers,
                failpoints=args.failpoints or None,
                progress=progress,
            ))
    except ConfigError as exc:
        print(f"chaos error: {exc}", file=sys.stderr)
        return 2
    finally:
        if not args.keep and not args.dir:
            import shutil

            shutil.rmtree(work_dir, ignore_errors=True)
    if args.json:
        print(json.dumps(
            {"work_dir": work_dir, "sweeps": [r.as_dict() for r in reports]},
            sort_keys=True, indent=1,
        ))
    else:
        for report in reports:
            print(report.render())
        if args.keep or args.dir:
            print(f"work dir kept: {work_dir}")
    return 0 if all(r.ok for r in reports) else 1


def _cmd_matrix(args: argparse.Namespace) -> int:
    print(exp.e2_pairing_matrix().text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Node-sharing batch-scheduling reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one strategy")
    _add_workload_args(p_run)
    _add_resilience_args(p_run)
    p_run.add_argument(
        "--strategy", choices=all_strategy_names(), default="shared_backfill"
    )
    p_run.add_argument("--threshold", type=float, default=1.1,
                       help="pairing compatibility threshold")
    p_run.add_argument("--sacct", type=int, default=0, metavar="N",
                       help="print the first N accounting rows")
    p_run.add_argument("--gantt", type=int, default=0, metavar="ROWS",
                       help="render an ASCII gantt chart over ROWS nodes")
    p_run.add_argument("--json", action="store_true",
                       help="machine-readable JSON instead of tables")
    _add_diagnostics_args(p_run)
    _add_telemetry_args(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_inspect = sub.add_parser(
        "inspect", help="characterise a workload without simulating it"
    )
    _add_workload_args(p_inspect)
    p_inspect.set_defaults(func=_cmd_inspect)

    p_cmp = sub.add_parser("compare", help="compare strategies on one trace")
    _add_workload_args(p_cmp)
    _add_resilience_args(p_cmp)
    p_cmp.add_argument("--strategies", nargs="*", choices=all_strategy_names())
    p_cmp.add_argument("--baseline", default="easy_backfill")
    p_cmp.add_argument("--json", action="store_true",
                       help="machine-readable JSON instead of tables")
    p_cmp.set_defaults(func=_cmd_compare)

    p_exp = sub.add_parser("experiment", help="regenerate a paper artefact")
    p_exp.add_argument("id", help="experiment id (e1..e24), or 'list'")
    p_exp.add_argument("--workers", type=int, default=1,
                       help="parallelise sweep experiments "
                            "(e8/e10/e15/e19/e21/e22)")
    p_exp.add_argument("--json", action="store_true",
                       help="emit the experiment's data rows as JSON")
    p_exp.set_defaults(func=_cmd_experiment)

    p_camp = sub.add_parser(
        "campaign",
        help="execute a parallel, resumable, cached campaign of runs",
    )
    p_camp.add_argument("--spec", default="",
                        help="JSON campaign spec file (overrides grid flags)")
    p_camp.add_argument("--name", default="campaign",
                        help="campaign name (store subdirectory)")
    p_camp.add_argument("--jobs", type=int, default=400,
                        help="jobs per generated workload")
    p_camp.add_argument("--strategies", nargs="*",
                        choices=all_strategy_names(),
                        help="grid axis (default: easy_backfill shared_backfill)")
    p_camp.add_argument("--seeds", nargs="*", type=int, default=[7],
                        help="grid axis: workload seeds")
    p_camp.add_argument("--loads", nargs="*", type=float, default=[1.5],
                        help="grid axis: offered loads")
    p_camp.add_argument("--share-fractions", nargs="*", type=float,
                        default=[0.85], help="grid axis: shareable fractions")
    p_camp.add_argument("--thresholds", nargs="*", type=float, default=[1.1],
                        help="grid axis: pairing thresholds")
    p_camp.add_argument("--sizes", nargs="*", type=int, default=[128],
                        help="grid axis: cluster sizes")
    p_camp.add_argument("--experiments", nargs="*", default=[],
                        help="named experiment refs (e1..e24, or 'all')")
    p_camp.add_argument("--workers", type=int,
                        default=max(1, os.cpu_count() or 1),
                        help="worker processes (1 = serial fallback)")
    p_camp.add_argument("--store", default="",
                        help="artifact store dir (default campaign_runs/<name>)")
    p_camp.add_argument("--timeout", type=float, default=0.0,
                        help="per-run timeout seconds (0 = none)")
    p_camp.add_argument("--retries", type=int, default=2,
                        help="extra attempts per failed run")
    p_camp.add_argument("--backoff", type=float, default=0.5,
                        help="base seconds of exponential retry backoff")
    p_camp.add_argument("--jsonl", default="",
                        help="results JSONL path (default <store>/results.jsonl)")
    p_camp.add_argument("--no-jsonl", action="store_true",
                        help="skip writing the results JSONL file")
    p_camp.add_argument("--progress-log", default="",
                        help="append progress events as JSONL to this file")
    p_camp.add_argument("--quiet", action="store_true",
                        help="suppress per-run progress lines")
    p_camp.add_argument("--quarantine-after", type=int, default=2,
                        help="isolate a run after N worker crashes / "
                             "watchdog trips (0 = never quarantine)")
    p_camp.add_argument("--bundle-dir", default="",
                        help="replay bundle directory "
                             "(default <store>/bundles)")
    p_camp.add_argument("--snapshot-dir", default="",
                        help="simulator snapshot directory "
                             "(default <store>/snapshots)")
    p_camp.add_argument("--snapshot-every", default="60",
                        help="periodic snapshot trigger: seconds "
                             "('60', '2.5s') or events ('5000e'); "
                             "'0' leaves only suspension snapshots")
    p_camp.add_argument("--rss-budget-mb", type=float, default=0.0,
                        help="suspend a worker's run when its RSS "
                             "exceeds this budget (0 = off)")
    p_camp.add_argument("--disk-min-free-mb", type=float, default=0.0,
                        help="pause dispatch while free space under "
                             "the store is below this (0 = off)")
    p_camp.add_argument("--telemetry", action="store_true",
                        help="write per-run telemetry sidecars under "
                             "<store>/telemetry and merge them into "
                             "<store>/telemetry.json (results stay "
                             "byte-identical)")
    p_camp.add_argument("--join", action="store_true",
                        help="drain through the durable work queue under "
                             "<store>/.queue: --workers cooperating "
                             "processes claim per-run leases; extra "
                             "`repro queue work <store>` workers may "
                             "join at any time")
    p_camp.set_defaults(func=_cmd_campaign)

    p_queue = sub.add_parser(
        "queue",
        help="inspect or drain a store's durable work queue",
    )
    queue_sub = p_queue.add_subparsers(dest="queue_command", required=True)
    p_qstat = queue_sub.add_parser(
        "status", help="print the queue's item/lease census"
    )
    p_qstat.add_argument("store", help="a --join campaign's store directory")
    p_qstat.add_argument("--json", action="store_true",
                         help="machine-readable census")
    p_qstat.add_argument("--watch", type=float, default=0.0,
                         metavar="SECONDS",
                         help="refresh the census every SECONDS until "
                              "the queue drains (with --json: one "
                              "compact JSON object per refresh)")
    p_qstat.set_defaults(func=_cmd_queue_status)
    p_qwork = queue_sub.add_parser(
        "work", help="run one cooperative drain worker on a store"
    )
    p_qwork.add_argument("store", help="a --join campaign's store directory")
    p_qwork.add_argument("--quiet", action="store_true",
                         help="suppress per-run progress lines")
    p_qwork.set_defaults(func=_cmd_queue_work)
    p_qmetrics = queue_sub.add_parser(
        "metrics",
        help="render the fleet event sidecars as Prometheus text "
             "(the offline twin of the server's GET /metrics)",
    )
    p_qmetrics.add_argument("store",
                            help="a --join campaign's store directory")
    p_qmetrics.add_argument("--json", action="store_true",
                            help="raw aggregate document instead of "
                                 "Prometheus text")
    p_qmetrics.set_defaults(func=_cmd_queue_metrics)

    p_top = sub.add_parser(
        "top",
        help="live fleet dashboard over one store (workers, leases, "
             "throughput, drain ETA)",
    )
    p_top.add_argument("store", help="a --join campaign's store directory")
    p_top.add_argument("--interval", type=float, default=1.0,
                       metavar="SECONDS",
                       help="refresh period (default 1s); exits when "
                            "the queue drains")
    p_top.add_argument("--once", action="store_true",
                       help="print a single frame and exit")
    p_top.add_argument("--json", action="store_true",
                       help="print one frame document as JSON and exit")
    p_top.set_defaults(func=_cmd_top)

    p_serve = sub.add_parser(
        "serve",
        help="serve campaign submissions over HTTP (idempotent submit, "
             "SSE progress, admission control)",
    )
    p_serve.add_argument("--root", default="service_runs",
                         help="service root directory (submissions, "
                              "idempotency keys, per-submission stores)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address")
    p_serve.add_argument("--port", type=int, default=8177,
                         help="bind port (0 = ephemeral; the actual "
                              "port lands in <root>/service.json)")
    p_serve.add_argument("--workers", type=int, default=0,
                         help="drain worker subprocesses to supervise "
                              "across submission stores (0 = serve "
                              "only; run `repro queue work` fleets "
                              "yourself)")
    p_serve.add_argument("--max-inflight", type=int, default=8,
                         help="concurrent request handlers before "
                              "admission queues")
    p_serve.add_argument("--accept-backlog", type=int, default=16,
                         help="requests allowed to wait for a handler "
                              "slot; beyond this the server sheds "
                              "with 429 + Retry-After")
    p_serve.add_argument("--max-streams", type=int, default=32,
                         help="open SSE streams allowed at once "
                              "(streams release their admission slot "
                              "once established; this cap bounds them "
                              "instead)")
    p_serve.add_argument("--deadline-s", type=float, default=10.0,
                         help="per-request handler deadline (503 on "
                              "expiry; durable writes are idempotent, "
                              "a retry resumes them)")
    p_serve.add_argument("--heartbeat-s", type=float, default=5.0,
                         help="SSE heartbeat interval — also the "
                              "half-open connection detection bound")
    p_serve.add_argument("--retry-after", type=float, default=1.0,
                         help="Retry-After seconds handed to shed or "
                              "draining clients")
    p_serve.add_argument("--drain-grace-s", type=float, default=10.0,
                         help="seconds granted to in-flight responses "
                              "and the worker fleet on SIGTERM drain")
    p_serve.add_argument("--drive", default="", metavar="SPEC",
                         help="self-drive harness: submit SPEC (a "
                              "campaign spec JSON file) to this server "
                              "twice under one idempotency key, stream "
                              "progress to completion, fetch results, "
                              "then exit (chaos/CI)")
    p_serve.add_argument("--quiet", action="store_true",
                         help="suppress serve progress lines")
    p_serve.set_defaults(func=_cmd_serve)

    p_res = sub.add_parser(
        "resume",
        help="restart a suspended campaign from its result store",
    )
    p_res.add_argument("store", help="the campaign's --store directory")
    p_res.add_argument("--workers", type=int, default=0,
                       help="override the recorded worker count (0 = keep)")
    p_res.add_argument("--progress-log", default="",
                       help="append progress events as JSONL to this file")
    p_res.add_argument("--quiet", action="store_true",
                       help="suppress per-run progress lines")
    p_res.add_argument("--no-jsonl", action="store_true",
                       help="skip rewriting the results JSONL file")
    p_res.add_argument("--telemetry", action="store_true",
                       help="arm telemetry sidecars even if the campaign "
                            "was recorded without them")
    p_res.set_defaults(func=_cmd_resume)

    p_replay = sub.add_parser(
        "replay", help="re-execute a crash replay bundle deterministically"
    )
    p_replay.add_argument("bundle", help="path to a <run_id>.bundle.json file")
    p_replay.add_argument("--json", action="store_true",
                          help="machine-readable replay report")
    p_replay.set_defaults(func=_cmd_replay)

    p_trace = sub.add_parser(
        "trace", help="export a Chrome/Perfetto trace of one run"
    )
    p_trace.add_argument(
        "record", nargs="?", default="",
        help="a stored campaign run record (<store>/<run_id>.json) to "
             "re-execute deterministically; omit to simulate the "
             "workload flags below; with --stitched: a store directory",
    )
    p_trace.add_argument("--stitched", action="store_true",
                         help="stitch the store's fleet event sidecars "
                              "into one distributed campaign trace "
                              "(server/lease/worker lanes) instead of "
                              "re-executing a run")
    p_trace.add_argument("--out", default="trace.json",
                         help="output path (default trace.json)")
    _add_workload_args(p_trace)
    p_trace.add_argument(
        "--strategy", choices=all_strategy_names(), default="shared_backfill"
    )
    p_trace.add_argument("--threshold", type=float, default=1.1,
                         help="pairing compatibility threshold")
    p_trace.set_defaults(func=_cmd_trace)

    p_stats = sub.add_parser(
        "stats", help="aggregate a campaign store (results + telemetry)"
    )
    p_stats.add_argument("store", help="the campaign's --store directory")
    p_stats.add_argument("--json", action="store_true",
                         help="alias for --format json")
    p_stats.add_argument("--format", choices=("table", "json", "csv"),
                         default="table",
                         help="output format (columnar stores stream; "
                              "no per-run JSON is loaded)")
    p_stats.set_defaults(func=_cmd_stats)

    p_synth = sub.add_parser(
        "synth", help="write a seeded synthetic SWF trace"
    )
    p_synth.add_argument("out", help="output .swf path")
    p_synth.add_argument("--jobs", type=int, default=10000,
                         help="jobs to synthesise")
    p_synth.add_argument("--nodes", type=int, default=128,
                         help="cluster size the trace targets")
    p_synth.add_argument("--seed", type=int, default=0,
                         help="generator seed (same seed = same bytes)")
    p_synth.add_argument("--load", type=float, default=0.9,
                         help="offered utilisation the arrivals target")
    p_synth.add_argument("--share-fraction", type=float, default=0.5,
                         help="fraction of jobs in the shareable queue")
    p_synth.add_argument("--cores", type=int, default=1,
                         help="cores per node written to the trace")
    p_synth.add_argument("--json", action="store_true",
                         help="machine-readable JSON summary")
    p_synth.set_defaults(func=_cmd_synth)

    p_ing = sub.add_parser(
        "ingest",
        help="stream an SWF trace into a replayable window archive",
    )
    p_ing.add_argument("swf", help="source SWF file")
    p_ing.add_argument("out", help="archive output directory")
    p_ing.add_argument("--window-jobs", type=int, default=20000,
                       help="target jobs per replay window")
    p_ing.add_argument("--chunk-jobs", type=int, default=8192,
                       help="parser chunk size (memory bound)")
    p_ing.add_argument("--cores", type=int, default=1,
                       help="cores per node (SWF processor conversion)")
    p_ing.add_argument("--mode", choices=("strict", "lenient"),
                       default="lenient",
                       help="lenient quarantines malformed records")
    p_ing.add_argument("--max-procs", type=int, default=0,
                       help="quarantine jobs above this processor count "
                            "(0 = no limit)")
    p_ing.add_argument("--max-jobs", type=int, default=0,
                       help="stop after this many admitted jobs (0 = all)")
    p_ing.add_argument("--json", action="store_true",
                       help="machine-readable JSON summary")
    p_ing.set_defaults(func=_cmd_ingest)

    p_rt = sub.add_parser(
        "replay-trace",
        help="replay an ingested archive window by window",
    )
    p_rt.add_argument("archive", help="ingested archive directory")
    p_rt.add_argument("--store", required=True,
                      help="replay store directory (results, columnar "
                           "records, boundary snapshots)")
    p_rt.add_argument(
        "--strategy", choices=all_strategy_names(), default="easy_backfill"
    )
    p_rt.add_argument("--strategies", nargs="*",
                      choices=all_strategy_names(), default=[],
                      help="fan several strategies out as queue items "
                           "(one window chain each, drained by "
                           "--workers processes into per-strategy "
                           "sub-stores); overrides --strategy")
    p_rt.add_argument("--workers", type=int, default=0,
                      help="fanout worker processes "
                           "(0 = one per strategy, capped at CPU count)")
    p_rt.add_argument("--nodes", type=int, default=128, help="cluster size")
    p_rt.add_argument("--backfill-interval", type=float, default=0.0,
                      help="periodic backfill pass interval in seconds "
                           "(0 = event-driven only)")
    p_rt.add_argument("--threshold", type=float, default=1.1,
                      help="pairing compatibility threshold")
    p_rt.add_argument("--rss-budget-mb", type=float, default=0.0,
                      help="arm the RSS resource guard (0 = off)")
    p_rt.add_argument("--telemetry", action="store_true",
                      help="write per-window telemetry sidecars")
    p_rt.add_argument("--quiet", action="store_true",
                      help="suppress per-window progress lines")
    p_rt.add_argument("--json", action="store_true",
                      help="machine-readable JSON summary")
    p_rt.set_defaults(func=_cmd_replay_trace)

    p_fsck = sub.add_parser(
        "fsck",
        help="check a store/archive against its durable-state invariants",
    )
    p_fsck.add_argument(
        "store", help="campaign/replay store, columnar store or archive dir"
    )
    p_fsck.add_argument("--json", action="store_true",
                        help="machine-readable findings")
    p_fsck.add_argument("--repair", action="store_true",
                        help="reap queue leases whose holder pid is "
                             "dead and clear stale failpoint stamps / "
                             ".tmp residue (safe: never touches records)")
    p_fsck.set_defaults(func=_cmd_fsck)

    p_chaos = sub.add_parser(
        "chaos",
        help="crash-consistency sweep: kill at every failpoint, "
             "recover, fsck, compare to baseline",
    )
    p_chaos.add_argument("--workload",
                         choices=("campaign", "replay", "queue", "serve",
                                  "both", "all"),
                         default="both",
                         help="which pipeline(s) to torture: 'both' = "
                              "campaign+replay (default), 'queue' = the "
                              "two-worker cooperative drain, 'serve' = "
                              "the HTTP service self-drive, 'all' = "
                              "everything")
    p_chaos.add_argument("--dir", default="",
                         help="work directory (kept; default: a fresh "
                              "temp dir, removed unless --keep)")
    p_chaos.add_argument("--workers", type=int, default=2,
                         help="campaign worker processes (default 2)")
    p_chaos.add_argument("--failpoints", nargs="*", default=[],
                         help="sweep only these failpoints "
                              "(default: the whole catalog)")
    p_chaos.add_argument("--keep", action="store_true",
                         help="keep the work directory for inspection")
    p_chaos.add_argument("--quiet", action="store_true",
                         help="suppress per-trial progress lines")
    p_chaos.add_argument("--json", action="store_true",
                         help="machine-readable sweep report")
    p_chaos.set_defaults(func=_cmd_chaos)

    p_mat = sub.add_parser("matrix", help="print the pairing matrix")
    p_mat.set_defaults(func=_cmd_matrix)
    return parser


def _structured_error(exc: ReproError) -> str:
    """One JSON line describing an escaped error, for scripted callers."""
    payload: dict[str, object] = {
        "error": type(exc).__name__,
        "message": str(exc),
    }
    info = getattr(exc, "crash_info", None)
    if info is not None and hasattr(info, "replay_signature"):
        payload["crash"] = info.replay_signature()
    bundle = getattr(exc, "bundle_path", None)
    if bundle:
        payload["bundle"] = str(bundle)
    return json.dumps(payload, sort_keys=True)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream closed early (`repro stats ... | head`): the
        # conventional quiet exit, not a traceback.  Detach stdout so
        # the interpreter's shutdown flush doesn't raise again (a
        # captured/redirected stdout may have no fd — skip in that case).
        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
        except (OSError, ValueError, io.UnsupportedOperation):
            pass
        return EXIT_SIGPIPE
    except ReproError as exc:
        print(_structured_error(exc), file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # Every command, not just `campaign`, reports a clean
        # conventional 128+SIGINT status instead of a traceback.
        print("\ninterrupted", file=sys.stderr)
        return EXIT_INTERRUPTED


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
