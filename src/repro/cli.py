"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Generate a Trinity campaign (or read an SWF trace) and simulate it
    under one strategy; prints the schedule summary and final
    ``sacct``-style accounting.
``compare``
    Run the same workload under several strategies and print the
    headline comparison table.
``experiment``
    Regenerate one of the paper's tables/figures by id (e1..e10, e12).
``matrix``
    Print the mini-app pairwise co-run matrix.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro.analysis import experiments as exp
from repro.core.strategy import all_strategy_names
from repro.metrics.report import format_comparison, format_table
from repro.metrics.summary import summarize
from repro.slurm.config import SchedulerConfig
from repro.slurm.formats import sacct
from repro.slurm.manager import run_simulation
from repro.workload.swf import read_swf, read_swf_header_apps
from repro.workload.trace import WorkloadTrace
from repro.workload.trinity import TrinityWorkloadGenerator


def _build_trace(args: argparse.Namespace) -> WorkloadTrace:
    if args.swf:
        apps = read_swf_header_apps(args.swf)
        return read_swf(args.swf, cores_per_node=args.cores, app_names=apps)
    rng = np.random.default_rng(args.seed)
    generator = TrinityWorkloadGenerator(
        share_obeys_app=False,
        share_fraction=args.share_fraction,
        offered_load=args.load,
    )
    return generator.generate(args.jobs, args.nodes, rng)


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=300, help="jobs to generate")
    parser.add_argument("--nodes", type=int, default=128, help="cluster size")
    parser.add_argument("--seed", type=int, default=7, help="workload RNG seed")
    parser.add_argument(
        "--load", type=float, default=1.5, help="offered load (>=1 keeps a queue)"
    )
    parser.add_argument(
        "--share-fraction", type=float, default=0.85,
        help="probability a job permits node sharing",
    )
    parser.add_argument("--swf", type=str, default="",
                        help="replay this SWF trace instead of generating")
    parser.add_argument("--cores", type=int, default=32,
                        help="cores per node (SWF processor conversion)")


def _cmd_run(args: argparse.Namespace) -> int:
    trace = _build_trace(args)
    config = SchedulerConfig(
        strategy=args.strategy, share_threshold=args.threshold
    )
    result = run_simulation(
        trace, num_nodes=args.nodes, strategy=args.strategy, config=config
    )
    summary = summarize(result)
    print(format_table([summary.as_dict()], title=f"strategy: {args.strategy}"))
    if args.sacct:
        print()
        print(sacct(result.accounting, max_rows=args.sacct))
    if args.gantt:
        from repro.metrics.gantt import render_gantt, render_sparkline

        print()
        print(render_gantt(result, max_nodes=args.gantt))
        if result.collector is not None:
            print()
            print(render_sparkline(result.collector.timeline(),
                                   peak=args.nodes))
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    trace = _build_trace(args)
    summary = trace.summary()
    print(format_table([summary], title=f"workload: {trace.name}"))
    mix = trace.app_mix()
    if mix:
        rows = [{"app": app or "(unknown)", "jobs": count}
                for app, count in sorted(mix.items())]
        print()
        print(format_table(rows, title="application mix"))
    sizes: dict[int, int] = {}
    for job in trace:
        sizes[job.num_nodes] = sizes.get(job.num_nodes, 0) + 1
    print()
    print(format_table(
        [{"nodes": n, "jobs": c} for n, c in sorted(sizes.items())],
        title="size histogram",
    ))
    print(f"\noffered load on {args.nodes} nodes: "
          f"{trace.offered_load(args.nodes):.3f}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    trace = _build_trace(args)
    strategies = args.strategies or list(all_strategy_names())
    summaries = []
    for strategy in strategies:
        result = run_simulation(trace, num_nodes=args.nodes, strategy=strategy)
        summaries.append(summarize(result))
    print(format_comparison(summaries, baseline=args.baseline))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    drivers = {
        "e1": exp.e1_miniapp_table,
        "e2": exp.e2_pairing_matrix,
        "e3": exp.e3_headline,
        "e4": exp.e4_utilization_timeline,
        "e5": exp.e5_throughput_curves,
        "e6": exp.e6_wait_by_class,
        "e7": exp.e7_coallocation_overhead,
        "e8": exp.e8_share_fraction_sweep,
        "e9": exp.e9_pairing_ablation,
        "e10": exp.e10_threshold_sweep,
        "e12": exp.e12_swf_replay,
        "e13": exp.e13_cluster_scaling,
        "e14": exp.e14_walltime_accuracy,
        "e15": exp.e15_offered_load_sweep,
        "e16": exp.e16_topology_ablation,
        "e17": exp.e17_energy,
        "e18": exp.e18_diurnal_workload,
        "e19": exp.e19_replicated_headline,
        "e20": exp.e20_failure_resilience,
        "e21": exp.e21_walltime_prediction,
        "e22": exp.e22_sharing_mode_comparison,
    }
    driver = drivers.get(args.id.lower())
    if driver is None:
        print(f"unknown experiment {args.id!r}; choose from {sorted(drivers)}",
              file=sys.stderr)
        return 2
    print(driver().text)
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    print(exp.e2_pairing_matrix().text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Node-sharing batch-scheduling reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one strategy")
    _add_workload_args(p_run)
    p_run.add_argument(
        "--strategy", choices=all_strategy_names(), default="shared_backfill"
    )
    p_run.add_argument("--threshold", type=float, default=1.1,
                       help="pairing compatibility threshold")
    p_run.add_argument("--sacct", type=int, default=0, metavar="N",
                       help="print the first N accounting rows")
    p_run.add_argument("--gantt", type=int, default=0, metavar="ROWS",
                       help="render an ASCII gantt chart over ROWS nodes")
    p_run.set_defaults(func=_cmd_run)

    p_inspect = sub.add_parser(
        "inspect", help="characterise a workload without simulating it"
    )
    _add_workload_args(p_inspect)
    p_inspect.set_defaults(func=_cmd_inspect)

    p_cmp = sub.add_parser("compare", help="compare strategies on one trace")
    _add_workload_args(p_cmp)
    p_cmp.add_argument("--strategies", nargs="*", choices=all_strategy_names())
    p_cmp.add_argument("--baseline", default="easy_backfill")
    p_cmp.set_defaults(func=_cmd_compare)

    p_exp = sub.add_parser("experiment", help="regenerate a paper artefact")
    p_exp.add_argument("id", help="experiment id, e.g. e3")
    p_exp.set_defaults(func=_cmd_experiment)

    p_mat = sub.add_parser("matrix", help="print the pairing matrix")
    p_mat.set_defaults(func=_cmd_matrix)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
