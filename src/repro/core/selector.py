"""Availability tracking and node selection within one scheduler pass.

Strategies place several jobs per pass; each placement consumes idle
nodes or sharing capacity.  :class:`AvailabilityView` mirrors cluster
availability at pass start and is updated as the strategy commits
placements, so the resulting placement list applies cleanly.

Sharing capacity is exposed as **resident groups**, not individual
lanes.  Because jobs are bulk-synchronous (a job runs at the speed of
its slowest node), partially sharing a resident's nodes slows the
resident on *all* of its nodes while adding capacity on only some —
a net loss.  Profitable co-allocation therefore requires the joiner
to cover each joined resident's node set completely (the paper pairs
jobs over coinciding node sets).  A group is a running shared job all
of whose nodes still have a free SMT lane; joiners take whole groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import SchedulingError
from repro.interference.profile import ResourceProfile
from repro.slurm.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.strategy import ScheduleContext


@dataclass(frozen=True)
class ResidentGroup:
    """A joinable running job: its identity, profile and node set."""

    job: Job
    profile: ResourceProfile
    node_ids: tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.node_ids)


class AvailabilityView:
    """Mutable availability snapshot for one scheduling pass."""

    def __init__(self, ctx: "ScheduleContext") -> None:
        self._ctx = ctx
        cluster = ctx.cluster
        #: Idle node ids, ascending (first-fit order == node order,
        #: which is also what SLURM's linear selector does).  Nodes
        #: under failure suspicion sort last, so placements drain onto
        #: them only when nothing cleaner is available.
        self.idle: list[int] = [n.node_id for n in cluster.idle_nodes()]
        if ctx.avoid_nodes:
            self.idle = [n for n in self.idle if n not in ctx.avoid_nodes] + [
                n for n in self.idle if n in ctx.avoid_nodes
            ]
        #: Joinable resident groups keyed by resident job id.
        self.groups: dict[int, ResidentGroup] = {}
        for job in ctx.running.values():
            allocation = job.allocation
            if allocation is None or not allocation.is_shared:
                continue
            if all(
                cluster.node(node_id).has_free_lane
                for node_id in allocation.node_ids
            ):
                self.groups[job.job_id] = ResidentGroup(
                    job=job,
                    profile=ctx.profile_of(job),
                    node_ids=allocation.node_ids,
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def ctx(self) -> "ScheduleContext":
        """The owning context (placement helpers reach the decision
        trace through this)."""
        return self._ctx

    @property
    def idle_count(self) -> int:
        return len(self.idle)

    @property
    def has_groups(self) -> bool:
        return bool(self.groups)

    def joinable_groups(self, profile: ResourceProfile) -> list[ResidentGroup]:
        """Groups whose resident is compatible with *profile*, best
        predicted pair throughput first (stable on resident id)."""
        pairing = self._ctx.pairing
        candidates = [
            group
            for group in self.groups.values()
            if pairing.compatible(profile, group.profile)
        ]
        candidates.sort(
            key=lambda g: (-pairing.score(profile, g.profile), g.job.job_id)
        )
        return candidates

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def take_idle(self, count: int) -> list[int]:
        """Remove and return *count* idle nodes.

        Linear mode (default) takes the lowest ids — SLURM's linear
        selector.  Topology-aware mode greedily packs the request into
        the racks holding the most idle nodes, minimising the racks
        spanned (SLURM's topology plugin behaviour).
        """
        if count > len(self.idle):
            raise SchedulingError(
                f"requested {count} idle nodes, only {len(self.idle)} available"
            )
        if not self._ctx.topology_aware:
            taken, self.idle = self.idle[:count], self.idle[count:]
            return taken
        rack_of = self._ctx.cluster.topology.rack_of
        by_rack: dict[int, list[int]] = {}
        for node_id in self.idle:
            by_rack.setdefault(rack_of[node_id], []).append(node_id)
        # Fullest racks first (ties: lowest rack id) packs the request
        # into as few racks as a greedy pass can.
        ordered_racks = sorted(by_rack, key=lambda r: (-len(by_rack[r]), r))
        taken: list[int] = []
        for rack in ordered_racks:
            need = count - len(taken)
            if need == 0:
                break
            taken.extend(by_rack[rack][:need])
        taken_set = set(taken)
        self.idle = [n for n in self.idle if n not in taken_set]
        return taken

    def take_group(self, group: ResidentGroup) -> None:
        """Consume a resident group (its lanes are now committed)."""
        if group.job.job_id not in self.groups:
            raise SchedulingError(
                f"group of job {group.job.job_id} is not available"
            )
        del self.groups[group.job.job_id]

    def open_shared(
        self, node_ids: list[int], job: Job, profile: ResourceProfile
    ) -> None:
        """Record that *job* opened these (formerly idle) nodes in
        shared mode; the new group is joinable later this pass."""
        if job.job_id in self.groups:
            raise SchedulingError(f"job {job.job_id} already owns a group")
        self.groups[job.job_id] = ResidentGroup(
            job=job, profile=profile, node_ids=tuple(node_ids)
        )
