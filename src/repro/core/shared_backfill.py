"""Shared Backfill — the paper's co-allocation-aware EASY extension
(contribution).

EASY's structure is preserved — greedy phase, one reservation for the
blocked head, backfill behind it — with sharing woven into each step:

* **Greedy phase**: each job tries a shared placement first
  (compatible lanes, then idle nodes opened shared), falling back to
  exclusive.  A shareable head blocked on idle-node count may thus
  still start immediately inside the lanes of compatible running jobs.
* **Reservation**: node release bounds already incorporate the
  dilation grace of shared jobs (their walltime limits were stretched
  at start), so the shadow-time computation stays sound under sharing.
* **Backfill phase**: lane capacity is *free* with respect to the
  reservation — a job placed purely into lanes occupies no idle node
  and therefore can never delay the head, regardless of its length.
  Only the idle-node portion of a placement is subject to the usual
  EASY window condition (finish before shadow, or fit in the extra
  nodes).

With no shareable jobs in the queue the strategy reduces exactly to
EASY backfill (verified by an integration test).
"""

from __future__ import annotations

from repro.cluster.allocation import AllocationKind
from repro.core.easy_backfill import compute_reservation
from repro.core.placement import (
    place_best,
    place_exclusive,
    place_join,
    place_open_shared,
)
from repro.core.selector import AvailabilityView
from repro.core.strategy import Placement, ScheduleContext, Strategy
from repro.slurm.job import Job


class SharedBackfillStrategy(Strategy):
    """Co-allocation-aware EASY backfill."""

    name = "shared_backfill"
    wants_periodic_pass = True

    def schedule(self, ctx: ScheduleContext) -> list[Placement]:
        view = ctx.view = AvailabilityView(ctx)
        placements: list[Placement] = []
        queue = ctx.pending
        index = 0
        while index < len(queue):
            placement = place_best(queue[index], ctx, view)
            if placement is None:
                break
            placements.append(placement)
            index += 1
        if index >= len(queue):
            return placements

        head = queue[index]
        shadow, extra = compute_reservation(ctx, view, head, placements)

        for job in queue[index + 1 :]:
            if view.idle_count == 0 and not view.has_groups:
                break
            idle_before = view.idle_count
            placement = self._backfill_one(job, ctx, view, shadow, extra)
            if placement is None:
                continue
            placements.append(placement)
            end_bound = ctx.now + ctx.walltime_bound(job, placement.kind)
            if end_bound > shadow:
                # Only the idle-node portion can eat into the extra
                # budget; lane nodes were never idle.
                extra -= idle_before - view.idle_count
        return placements

    def _backfill_one(
        self,
        job: Job,
        ctx: ScheduleContext,
        view: AvailabilityView,
        shadow: float,
        extra: int,
    ) -> Placement | None:
        """Try to backfill one job without delaying the reservation."""
        if job.spec.shareable:
            # Joining resident groups consumes no idle node, so it can
            # never delay the head's reservation — backfill it freely.
            placement = place_join(job, ctx, view)
            if placement is not None:
                return placement
            # Opening idle nodes shared consumes idle capacity: a
            # placement that may outlive the shadow time must fit in
            # the extra budget; one that provably ends first may use
            # any idle node.
            shared_end = ctx.now + ctx.walltime_bound(job, AllocationKind.SHARED)
            if shared_end <= shadow:
                idle_budget = view.idle_count
            else:
                idle_budget = min(view.idle_count, max(0, extra))
            placement = place_open_shared(job, ctx, view, idle_budget=idle_budget)
            if placement is not None:
                return placement

        exclusive_end = ctx.now + ctx.walltime_bound(job, AllocationKind.EXCLUSIVE)
        if exclusive_end <= shadow or job.num_nodes <= extra:
            return place_exclusive(job, view)
        return None
