"""EASY (aggressive) backfill, exclusive allocation.

The classic Mu'alem & Feitelson algorithm and SLURM's default
``sched/backfill`` behaviour with one reservation:

1. *Greedy phase* — start jobs in priority order until one (the
   *head*) does not fit.
2. *Reservation* — compute the head's **shadow time**: the earliest
   time enough nodes will be free, assuming running jobs hold their
   nodes until their walltime bounds.  Nodes beyond the head's need at
   shadow time are the **extra** nodes.
3. *Backfill phase* — a lower-priority job may start now iff it fits
   on idle nodes and either finishes (by its walltime bound) before
   the shadow time, or uses no more than the extra nodes — so the
   head's reservation is never delayed.
"""

from __future__ import annotations

from repro.cluster.allocation import AllocationKind
from repro.core.placement import place_exclusive
from repro.core.selector import AvailabilityView
from repro.core.strategy import Placement, ScheduleContext, Strategy
from repro.slurm.job import Job


def node_release_times(
    ctx: ScheduleContext, placements: list[Placement]
) -> list[float]:
    """Walltime-bound release time of every currently occupied node.

    Computed per *node* (not per job): a shared node frees only when
    the later of its occupants reaches its bound.  Includes nodes
    granted by *placements* made earlier in this pass.
    """
    bounds: dict[int, float] = {}
    for job in ctx.running.values():
        assert job.allocation is not None
        end = ctx.predicted_end(job)
        for node_id in job.allocation.node_ids:
            prev = bounds.get(node_id)
            bounds[node_id] = end if prev is None else max(prev, end)
    for placement in placements:
        end = ctx.now + ctx.walltime_bound(placement.job, placement.kind)
        for node_id in placement.node_ids:
            prev = bounds.get(node_id)
            bounds[node_id] = end if prev is None else max(prev, end)
    return sorted(bounds.values())


def compute_reservation(
    ctx: ScheduleContext,
    view: AvailabilityView,
    head: Job,
    placements: list[Placement],
) -> tuple[float, int]:
    """Shadow time and extra-node count for the blocked *head* job.

    Returns ``(inf, idle_count)`` if the head can never fit (request
    larger than the cluster) — admission control should have rejected
    such a job, so this is purely defensive.
    """
    free = view.idle_count
    if free >= head.num_nodes:
        return ctx.now, free - head.num_nodes
    for release_time in node_release_times(ctx, placements):
        free += 1
        if free >= head.num_nodes:
            return release_time, free - head.num_nodes
    return float("inf"), view.idle_count


class EasyBackfillStrategy(Strategy):
    """Exclusive EASY backfill."""

    name = "easy_backfill"
    wants_periodic_pass = True

    def schedule(self, ctx: ScheduleContext) -> list[Placement]:
        view = ctx.view = AvailabilityView(ctx)
        placements: list[Placement] = []
        queue = ctx.pending
        index = 0
        while index < len(queue):
            placement = place_exclusive(queue[index], view)
            if placement is None:
                break
            placements.append(placement)
            index += 1
        if index >= len(queue):
            return placements

        head = queue[index]
        shadow, extra = compute_reservation(ctx, view, head, placements)

        for job in queue[index + 1 :]:
            if view.idle_count == 0:
                break
            if job.num_nodes > view.idle_count:
                continue
            end_bound = ctx.now + ctx.walltime_bound(job, AllocationKind.EXCLUSIVE)
            runs_past_shadow = end_bound > shadow
            if runs_past_shadow and job.num_nodes > extra:
                continue
            placement = place_exclusive(job, view)
            assert placement is not None  # guarded by idle_count check
            placements.append(placement)
            if runs_past_shadow:
                extra -= job.num_nodes
        return placements
