"""Scheduling strategies — the paper's contribution plus baselines.

Baselines (exclusive node allocation):

* :class:`~repro.core.fcfs.FcfsStrategy` — strict priority order,
  blocks at the first job that does not fit.
* :class:`~repro.core.first_fit.FirstFitStrategy` — scans the whole
  queue, starting anything that fits.
* :class:`~repro.core.easy_backfill.EasyBackfillStrategy` — EASY:
  reservation for the head job, aggressive backfilling behind it.
* :class:`~repro.core.conservative.ConservativeBackfillStrategy` —
  reservations for every queued job.

Node-sharing extensions (the contribution):

* :class:`~repro.core.shared_first_fit.SharedFirstFitStrategy`
* :class:`~repro.core.shared_backfill.SharedBackfillStrategy`
* :class:`~repro.core.shared_conservative.SharedConservativeStrategy`

each of which may co-allocate a shareable job into the free SMT lanes
of *compatible* running jobs (pairing decided by
:class:`~repro.core.pairing.PairingPolicy`), or open idle nodes in
shared mode so later jobs can join.
"""

from repro.core.conservative import ConservativeBackfillStrategy
from repro.core.easy_backfill import EasyBackfillStrategy
from repro.core.fcfs import FcfsStrategy
from repro.core.first_fit import FirstFitStrategy
from repro.core.pairing import PairingPolicy
from repro.core.selector import AvailabilityView
from repro.core.shared_backfill import SharedBackfillStrategy
from repro.core.shared_conservative import SharedConservativeStrategy
from repro.core.shared_first_fit import SharedFirstFitStrategy
from repro.core.strategy import Placement, ScheduleContext, Strategy, make_strategy

__all__ = [
    "AvailabilityView",
    "ConservativeBackfillStrategy",
    "EasyBackfillStrategy",
    "FcfsStrategy",
    "FirstFitStrategy",
    "PairingPolicy",
    "Placement",
    "ScheduleContext",
    "SharedBackfillStrategy",
    "SharedConservativeStrategy",
    "SharedFirstFitStrategy",
    "Strategy",
    "make_strategy",
]
