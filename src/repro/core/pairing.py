"""Co-allocation pairing policy.

Decides whether two applications should share a node, and ranks
candidate partners.  The *aware* policy consults the interference
model: a pair qualifies when the combined throughput clears a
threshold **and** neither side dilates beyond the walltime grace —
the second condition is what lets the shared strategies promise that
sharing never walltime-kills a job the scheduler itself slowed down.

The *oblivious* variant accepts every pair (subject only to the
dilation bound being ignored as well); it exists for ablation E9,
quantifying how much of the gain comes from pairing knowledge rather
than from sharing as such.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.interference.model import InterferenceModel
from repro.interference.profile import ResourceProfile


@dataclass
class PairingPolicy:
    """Compatibility predicate + partner ranking.

    Parameters
    ----------
    model:
        The interference model used for predictions.
    threshold:
        Minimum combined throughput (job-units per node-second) for a
        pair to be worth co-allocating; 1.0 would accept anything not
        strictly worse than an exclusive node, the default 1.1 demands
        a 10 % gain (leaving margin for model error, as the paper's
        offline-measured pairing lists do).
    max_dilation:
        Upper bound on either job's predicted dilation; must not
        exceed the manager's walltime grace.
    oblivious:
        Accept all pairs regardless of predictions (ablation mode).
    """

    model: InterferenceModel
    threshold: float = 1.1
    max_dilation: float = 2.0
    oblivious: bool = False

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ConfigError(f"threshold must be >= 0, got {self.threshold}")
        if self.max_dilation < 1.0:
            raise ConfigError(
                f"max_dilation must be >= 1.0, got {self.max_dilation}"
            )

    def compatible(self, a: ResourceProfile, b: ResourceProfile) -> bool:
        """Should applications *a* and *b* share a node?"""
        if self.oblivious:
            return True
        speed_a = self.model.speed(a, b)
        speed_b = self.model.speed(b, a)
        if speed_a + speed_b < self.threshold:
            return False
        min_speed = 1.0 / self.max_dilation
        return speed_a >= min_speed and speed_b >= min_speed

    def score(self, a: ResourceProfile, b: ResourceProfile) -> float:
        """Ranking key for candidate partners (higher is better).

        Oblivious mode still needs a deterministic order, so it scores
        everything equally.
        """
        if self.oblivious:
            return 1.0
        return self.model.pair_throughput(a, b)

    def predicted_speed(
        self, a: ResourceProfile, b: ResourceProfile | None
    ) -> float:
        """Predicted speed of *a* against co-runner *b* (None = alone)."""
        return self.model.speed(a, b)
