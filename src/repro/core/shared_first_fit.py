"""Shared First-Fit — the paper's first-fit extension (contribution).

Scans the whole queue in priority order, like first-fit, but a
shareable job may additionally be placed into the free SMT lanes of
*compatible* running jobs (co-allocation), or open idle nodes in
shared mode so later jobs can join it.  Lanes are preferred over idle
nodes: joining a lane consumes no idle capacity, leaving whole nodes
for the jobs that cannot share.

Non-shareable jobs are placed exclusively, exactly as in first-fit,
so the strategy degenerates to first-fit on a workload with no
shareable jobs — one of the "no overhead/no regression" properties
the evaluation checks.
"""

from __future__ import annotations

from repro.core.placement import place_best
from repro.core.selector import AvailabilityView
from repro.core.strategy import Placement, ScheduleContext, Strategy


class SharedFirstFitStrategy(Strategy):
    """Co-allocation-aware first-fit."""

    name = "shared_first_fit"

    def schedule(self, ctx: ScheduleContext) -> list[Placement]:
        view = ctx.view = AvailabilityView(ctx)
        placements: list[Placement] = []
        for job in ctx.pending:
            placement = place_best(job, ctx, view)
            if placement is not None:
                placements.append(placement)
            if view.idle_count == 0 and not view.has_groups:
                break
        return placements
