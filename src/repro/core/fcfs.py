"""First-come-first-served (strict priority order) baseline.

The simplest policy a batch system can run: walk the queue in priority
order and stop at the first job that does not fit.  No backfilling, no
sharing — the floor every other strategy is measured against.
"""

from __future__ import annotations

from repro.core.placement import place_exclusive
from repro.core.selector import AvailabilityView
from repro.core.strategy import Placement, ScheduleContext, Strategy


class FcfsStrategy(Strategy):
    """Exclusive FCFS."""

    name = "fcfs"

    def schedule(self, ctx: ScheduleContext) -> list[Placement]:
        view = ctx.view = AvailabilityView(ctx)
        placements: list[Placement] = []
        for job in ctx.pending:
            placement = place_exclusive(job, view)
            if placement is None:
                break  # head-of-line blocking: FCFS never skips
            placements.append(placement)
        return placements
