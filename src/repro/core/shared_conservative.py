"""Shared Conservative Backfill — sharing-aware conservative variant.

Completes the strategy matrix ({first-fit, EASY, conservative} ×
{exclusive, shared}): conservative backfill's per-job reservations,
with co-allocation woven in the same way as in
:class:`~repro.core.shared_backfill.SharedBackfillStrategy`:

* a shareable job first tries to **join** compatible resident groups —
  joins consume no idle node and therefore cannot disturb *any*
  reservation in the availability profile;
* otherwise the job books the earliest slot in the availability
  profile, using its grace-stretched walltime bound when it would
  start in shared-open mode (so the profile stays a true upper bound
  under later dilation);
* reservations are rebuilt from scratch each pass, as in the
  exclusive variant.
"""

from __future__ import annotations

from repro.cluster.allocation import AllocationKind
from repro.core.conservative import AvailabilityProfile
from repro.core.easy_backfill import node_release_times
from repro.core.placement import place_exclusive, place_join, place_open_shared
from repro.core.selector import AvailabilityView
from repro.core.strategy import Placement, ScheduleContext, Strategy
from repro.errors import SchedulingError


class SharedConservativeStrategy(Strategy):
    """Co-allocation-aware conservative backfill."""

    name = "shared_conservative"
    wants_periodic_pass = True

    def __init__(self, max_reservations: int = 100):
        if max_reservations < 1:
            raise SchedulingError("max_reservations must be >= 1")
        self.max_reservations = max_reservations

    def schedule(self, ctx: ScheduleContext) -> list[Placement]:
        view = ctx.view = AvailabilityView(ctx)
        placements: list[Placement] = []
        profile = AvailabilityProfile(ctx.now, view.idle_count)
        for release_time in node_release_times(ctx, []):
            if release_time == float("inf"):
                continue
            profile.add_release(release_time)

        reservations = 0
        for job in ctx.pending:
            if reservations >= self.max_reservations:
                break
            if job.num_nodes > ctx.cluster.num_nodes:
                continue  # defensive; admission control rejects these

            # Joining lanes is free capacity: it can never disturb the
            # availability profile, so it needs no reservation at all.
            placement = place_join(job, ctx, view)
            if placement is not None:
                placements.append(placement)
                continue

            if job.spec.shareable and ctx.allow_open_shared:
                kind = AllocationKind.SHARED
            else:
                kind = AllocationKind.EXCLUSIVE
            duration = ctx.walltime_bound(job, kind)
            start = profile.earliest_start(duration, job.num_nodes)
            profile.reserve(start, duration, job.num_nodes)
            reservations += 1
            if start > ctx.now:
                if ctx.decisions is not None:
                    ctx.decisions.reject(
                        ctx.now, "reserve", job.job_id,
                        "deferred_reservation",
                        start=start, need=job.num_nodes,
                    )
                continue
            if kind is AllocationKind.SHARED:
                placement = place_open_shared(job, ctx, view)
            else:
                placement = place_exclusive(job, view)
            if placement is None:
                raise SchedulingError(
                    f"profile admitted job {job.job_id} now but the view "
                    f"has only {view.idle_count} idle nodes"
                )
            placements.append(placement)
        return placements
