"""Conservative backfill, exclusive allocation.

Every queued job receives a reservation (in priority order) against a
step-function *availability profile* of future free-node counts; a job
starts now only when its reservation begins now.  No job is ever
delayed by a lower-priority one — the strongest fairness guarantee in
the backfill family, at the cost of lower packing than EASY.

Like SLURM (``bf_max_job_test``), the number of reservations actually
computed is capped; jobs beyond the cap simply wait for a later pass.
"""

from __future__ import annotations

import bisect

from repro.core.easy_backfill import node_release_times
from repro.core.placement import place_exclusive
from repro.core.selector import AvailabilityView
from repro.core.strategy import Placement, ScheduleContext, Strategy
from repro.cluster.allocation import AllocationKind
from repro.errors import SchedulingError


class AvailabilityProfile:
    """Free-node count as a right-continuous step function of time.

    Breakpoints are kept sorted; ``free[i]`` holds between
    ``times[i]`` (inclusive) and ``times[i+1]`` (exclusive), with the
    last value extending to infinity.
    """

    def __init__(self, start: float, free_now: int):
        self.times: list[float] = [start]
        self.free: list[int] = [free_now]

    def add_release(self, time: float, count: int = 1) -> None:
        """Nodes become free at *time* (and stay free thereafter)."""
        self._add_delta(time, count)

    def _index_at(self, time: float) -> int:
        return bisect.bisect_right(self.times, time) - 1

    def _add_delta(self, time: float, delta: int) -> None:
        index = self._index_at(time)
        if index < 0:
            raise SchedulingError(f"profile change before its start: {time}")
        if self.times[index] != time:
            index += 1
            self.times.insert(index, time)
            self.free.insert(index, self.free[index - 1])
        for i in range(index, len(self.times)):
            self.free[i] += delta

    def reserve(self, start: float, duration: float, count: int) -> None:
        """Subtract *count* nodes over [start, start+duration)."""
        self._add_delta(start, -count)
        self._add_delta(start + duration, +count)
        if any(f < 0 for f in self.free):
            raise SchedulingError("reservation drove availability negative")

    def earliest_start(self, duration: float, count: int) -> float:
        """Earliest time *count* nodes stay free for *duration*."""
        for i, candidate in enumerate(self.times):
            end = candidate + duration
            ok = True
            j = i
            while j < len(self.times) and self.times[j] < end:
                if self.free[j] < count:
                    ok = False
                    break
                j += 1
            if ok:
                return candidate
        raise SchedulingError(
            f"no start time found for {count} nodes x {duration}s"
        )


class ConservativeBackfillStrategy(Strategy):
    """Conservative backfill with per-pass reservation rebuilding."""

    name = "conservative"
    wants_periodic_pass = True

    def __init__(self, max_reservations: int = 100):
        if max_reservations < 1:
            raise SchedulingError("max_reservations must be >= 1")
        self.max_reservations = max_reservations

    def schedule(self, ctx: ScheduleContext) -> list[Placement]:
        view = ctx.view = AvailabilityView(ctx)
        placements: list[Placement] = []
        profile = AvailabilityProfile(ctx.now, view.idle_count)
        for release_time in node_release_times(ctx, []):
            if release_time == float("inf"):
                continue
            profile.add_release(release_time)

        reservations = 0
        for job in ctx.pending:
            if reservations >= self.max_reservations:
                break
            if job.num_nodes > ctx.cluster.num_nodes:
                continue  # defensive; admission control rejects these
            duration = ctx.walltime_bound(job, AllocationKind.EXCLUSIVE)
            start = profile.earliest_start(duration, job.num_nodes)
            profile.reserve(start, duration, job.num_nodes)
            reservations += 1
            if start > ctx.now:
                if ctx.decisions is not None:
                    ctx.decisions.reject(
                        ctx.now, "reserve", job.job_id,
                        "deferred_reservation",
                        start=start, need=job.num_nodes,
                    )
                continue
            placement = place_exclusive(job, view)
            if placement is None:
                raise SchedulingError(
                    f"profile admitted job {job.job_id} now but the view "
                    f"has only {view.idle_count} idle nodes"
                )
            placements.append(placement)
        return placements
