"""Shared placement helpers used by several strategies.

These functions *consume* from the pass-local
:class:`~repro.core.selector.AvailabilityView` when they succeed, and
leave it untouched when they fail, so strategies can probe
alternatives safely.

Shared placements follow the **full-overlap rule** (see
``selector.py``): a joiner covers one or more compatible resident
groups whose sizes sum *exactly* to its request — never a partial
overlap, never a lanes-plus-idle mix.  A shareable job that cannot
join opens idle nodes in shared mode instead (running at full speed,
available for a future joiner of matching size).

When the context carries a :class:`~repro.observability.DecisionTrace`
each probe emits exactly one record — an accept, or a reject carrying
one reason code from :data:`~repro.observability.REASON_CODES`.
Classification runs only on the failure path with the trace armed, so
the decision logic itself is untouched either way.

These helpers run once per pending job per scheduler pass, so the
rejection sites guard against streak-suppressed repeats *inline*
(consulting ``DecisionTrace.streaks`` directly) rather than paying a
method call plus keyword-argument construction twenty-odd thousand
times per run just to have ``reject()`` discard the repeat.
"""

from __future__ import annotations

from repro.cluster.allocation import AllocationKind
from repro.core.selector import AvailabilityView, ResidentGroup
from repro.core.strategy import Placement, ScheduleContext
from repro.slurm.job import Job


def place_exclusive(
    job: Job, view: AvailabilityView, idle_budget: int | None = None
) -> Placement | None:
    """Place *job* on idle nodes exclusively, if enough are available
    within *idle_budget* (None = unlimited)."""
    decisions = view.ctx.decisions
    need = job.num_nodes
    if need > view.idle_count:
        if decisions is not None:
            jid = job.spec.job_id
            streak = decisions.streaks.get(jid)
            if streak is not None and streak.get("exclusive") == "insufficient_idle":
                decisions.suppressed += 1
            else:
                decisions.reject(
                    view.ctx.now, "exclusive", jid, "insufficient_idle",
                    need=need, idle=view.idle_count,
                )
        return None
    if idle_budget is not None and need > idle_budget:
        if decisions is not None:
            jid = job.spec.job_id
            streak = decisions.streaks.get(jid)
            if streak is not None and streak.get("exclusive") == "reservation_collision":
                decisions.suppressed += 1
            else:
                decisions.reject(
                    view.ctx.now, "exclusive", jid, "reservation_collision",
                    need=need, budget=idle_budget,
                )
        return None
    node_ids = tuple(view.take_idle(need))
    if decisions is not None:
        decisions.accept(view.ctx.now, "exclusive", job.job_id, "exclusive", need)
    return Placement(job=job, node_ids=node_ids, kind=AllocationKind.EXCLUSIVE)


def _exact_group_fill(
    groups: list[ResidentGroup], need: int, max_groups: int = 64
) -> list[ResidentGroup] | None:
    """Choose groups whose sizes sum exactly to *need*.

    Tries the single best-scoring exact match first (the common case:
    pairing two same-sized jobs), then solves an exact subset-sum over
    the candidates by dynamic programming, preferring combinations of
    higher-ranked (better-scoring) groups.  Only the *ordering*
    among groups encodes score, which keeps the DP integral: states
    are filled in rank order, so the first combination reaching each
    sum uses the best-ranked prefix.
    """
    for group in groups:
        if group.size == need:
            return [group]
    candidates = groups[:max_groups]
    # reachable[s] = list of group indices forming sum s (first found,
    # which is best-ranked because candidates arrive in score order).
    reachable: dict[int, tuple[int, ...]] = {0: ()}
    for index, group in enumerate(candidates):
        size = group.size
        if size > need:
            continue
        # Iterate a snapshot so each group is used at most once.
        for total, combo in list(reachable.items()):
            new_total = total + size
            if new_total > need or new_total in reachable:
                continue
            new_combo = combo + (index,)
            if new_total == need:
                return [candidates[i] for i in new_combo]
            reachable[new_total] = new_combo
    return None


def _memory_fits(job: Job, group: ResidentGroup, ctx: ScheduleContext) -> bool:
    """Do the joiner's and resident's working sets fit one node's RAM?

    Footprints of 0 mean "unconstrained" (unknown-memory jobs, e.g.
    SWF replays without memory fields, are assumed to fit).
    """
    joiner_mem = job.spec.memory_mb_per_node
    resident_mem = group.job.spec.memory_mb_per_node
    if joiner_mem <= 0 or resident_mem <= 0:
        return True
    node_memory = min(
        ctx.cluster.node(node_id).memory_mb for node_id in group.node_ids
    )
    return joiner_mem + resident_mem <= node_memory


def place_join(
    job: Job, ctx: ScheduleContext, view: AvailabilityView
) -> Placement | None:
    """Co-allocate *job* onto compatible resident groups covering its
    request exactly.  Consumes no idle nodes."""
    decisions = ctx.decisions
    if not job.spec.shareable:
        if decisions is not None:
            jid = job.spec.job_id
            streak = decisions.streaks.get(jid)
            if streak is not None and streak.get("join") == "not_shareable":
                decisions.suppressed += 1
            else:
                decisions.reject(ctx.now, "join", jid, "not_shareable")
        return None
    profile = ctx.profile_of(job)
    compatible = view.joinable_groups(profile)
    groups = [
        group for group in compatible if _memory_fits(job, group, ctx)
    ]
    fill = _exact_group_fill(groups, job.num_nodes)
    if fill is None:
        if decisions is not None:
            if not view.groups:
                code = "no_resident_groups"
            elif not compatible:
                code = "interference_cap"
            elif not groups:
                code = "memory"
            else:
                code = "no_exact_cover"
            jid = job.spec.job_id
            streak = decisions.streaks.get(jid)
            if streak is not None and streak.get("join") == code:
                decisions.suppressed += 1
            else:
                decisions.reject(
                    ctx.now, "join", jid, code,
                    need=job.num_nodes, groups=len(groups),
                )
        return None
    node_ids: list[int] = []
    for group in fill:
        view.take_group(group)
        node_ids.extend(group.node_ids)
    if decisions is not None:
        decisions.accept(
            ctx.now, "join", job.job_id, "shared", job.num_nodes,
            residents=[group.job.job_id for group in fill],
        )
    return Placement(job=job, node_ids=tuple(node_ids), kind=AllocationKind.SHARED)


def place_open_shared(
    job: Job,
    ctx: ScheduleContext,
    view: AvailabilityView,
    idle_budget: int | None = None,
) -> Placement | None:
    """Place a shareable *job* on idle nodes opened in shared mode.

    The job runs alone (at full speed — the zero-overhead property)
    until a matching joiner arrives; its free lanes become joinable
    immediately, including later in this same pass.
    """
    decisions = ctx.decisions
    if not job.spec.shareable:
        if decisions is not None:
            jid = job.spec.job_id
            streak = decisions.streaks.get(jid)
            if streak is not None and streak.get("open_shared") == "not_shareable":
                decisions.suppressed += 1
            else:
                decisions.reject(ctx.now, "open_shared", jid, "not_shareable")
        return None
    if not ctx.allow_open_shared:
        if decisions is not None:
            jid = job.spec.job_id
            streak = decisions.streaks.get(jid)
            if streak is not None and streak.get("open_shared") == "open_shared_disabled":
                decisions.suppressed += 1
            else:
                decisions.reject(
                    ctx.now, "open_shared", jid, "open_shared_disabled"
                )
        return None
    need = job.num_nodes
    if need > view.idle_count:
        if decisions is not None:
            jid = job.spec.job_id
            streak = decisions.streaks.get(jid)
            if streak is not None and streak.get("open_shared") == "insufficient_idle":
                decisions.suppressed += 1
            else:
                decisions.reject(
                    ctx.now, "open_shared", jid, "insufficient_idle",
                    need=need, idle=view.idle_count,
                )
        return None
    if idle_budget is not None and need > idle_budget:
        if decisions is not None:
            jid = job.spec.job_id
            streak = decisions.streaks.get(jid)
            if streak is not None and streak.get("open_shared") == "reservation_collision":
                decisions.suppressed += 1
            else:
                decisions.reject(
                    ctx.now, "open_shared", jid, "reservation_collision",
                    need=need, budget=idle_budget,
                )
        return None
    node_ids = view.take_idle(need)
    view.open_shared(node_ids, job, ctx.profile_of(job))
    if decisions is not None:
        decisions.accept(ctx.now, "open_shared", job.job_id, "shared", need)
    return Placement(job=job, node_ids=tuple(node_ids), kind=AllocationKind.SHARED)


def place_best(
    job: Job,
    ctx: ScheduleContext,
    view: AvailabilityView,
    idle_budget: int | None = None,
) -> Placement | None:
    """Sharing-aware placement preference order:

    1. join compatible resident groups (consumes no idle capacity);
    2. open idle nodes in shared mode (shareable jobs);
    3. plain exclusive placement.
    """
    placement = place_join(job, ctx, view)
    if placement is not None:
        return placement
    placement = place_open_shared(job, ctx, view, idle_budget=idle_budget)
    if placement is not None:
        return placement
    return place_exclusive(job, view, idle_budget=idle_budget)
