"""First-fit baseline.

Walks the whole queue in priority order and starts *any* job that
fits on the currently idle nodes — the classic first-fit list
scheduler.  Improves utilisation over FCFS at the price of possible
starvation of wide jobs (no reservation protects the queue head);
the age priority factor is the only mitigation, exactly the trade-off
the backfill literature documents.
"""

from __future__ import annotations

from repro.core.placement import place_exclusive
from repro.core.selector import AvailabilityView
from repro.core.strategy import Placement, ScheduleContext, Strategy


class FirstFitStrategy(Strategy):
    """Exclusive first-fit over the whole queue."""

    name = "first_fit"

    def schedule(self, ctx: ScheduleContext) -> list[Placement]:
        view = ctx.view = AvailabilityView(ctx)
        placements: list[Placement] = []
        for job in ctx.pending:
            placement = place_exclusive(job, view)
            if placement is not None:
                placements.append(placement)
            if view.idle_count == 0:
                break
        return placements
