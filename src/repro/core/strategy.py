"""Strategy interface and scheduling context.

A strategy is a pure decision function: given a snapshot of the
system (:class:`ScheduleContext`), it returns the list of
:class:`Placement` s to start *now*, in order.  It never mutates the
cluster — the workload manager applies placements — but it does
consume from the context's :class:`~repro.core.selector.
AvailabilityView` so successive placements within one pass see a
consistent picture.

Strategies only see scheduler-legal information: requested node
counts, requested walltimes (via :meth:`ScheduleContext.walltime_bound`)
and application names/profiles.  Ground-truth runtimes stay inside the
simulator.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.cluster.allocation import AllocationKind
from repro.cluster.machine import Cluster
from repro.errors import ConfigError, SchedulingError
from repro.interference.profile import ResourceProfile
from repro.slurm.job import Job

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pairing import PairingPolicy
    from repro.core.selector import AvailabilityView
    from repro.observability.trace import DecisionTrace


@dataclass(frozen=True)
class Placement:
    """A decision to start one job now on specific nodes."""

    job: Job
    node_ids: tuple[int, ...]
    kind: AllocationKind

    def __post_init__(self) -> None:
        if len(self.node_ids) != self.job.num_nodes:
            raise SchedulingError(
                f"placement for job {self.job.job_id} grants "
                f"{len(self.node_ids)} nodes, requested {self.job.num_nodes}"
            )
        if len(set(self.node_ids)) != len(self.node_ids):
            raise SchedulingError(
                f"placement for job {self.job.job_id} repeats nodes"
            )


@dataclass
class ScheduleContext:
    """Everything a strategy may look at during one pass."""

    now: float
    cluster: Cluster
    #: Pending jobs in priority order (highest first).
    pending: list[Job]
    #: Running jobs by id.
    running: dict[int, Job]
    #: Resource profile for a job (falls back to a default profile).
    profile_of: Callable[[Job], ResourceProfile]
    #: Upper bound on a running job's end time (walltime-based; what a
    #: real scheduler knows).
    predicted_end: Callable[[Job], float]
    #: Co-allocation compatibility policy.
    pairing: "PairingPolicy"
    #: Walltime-dilation grace applied to shared placements.
    walltime_grace: float = 2.0
    #: Whether a shareable job may open idle nodes in shared mode.
    allow_open_shared: bool = True
    #: Prefer idle-node picks spanning few racks (SLURM topology
    #: plugin behaviour); see SchedulerConfig.topology_aware.
    topology_aware: bool = False
    #: Optional system-generated runtime prediction (seconds) used in
    #: place of the raw walltime request for *scheduling* estimates.
    predict_runtime: Callable[[Job], float] | None = None
    #: Nodes under failure suspicion (recently failed, not yet
    #: drained); the availability view orders them last so placements
    #: prefer clean nodes.  Empty unless blacklisting is configured.
    avoid_nodes: frozenset[int] = frozenset()
    #: Optional decision trace; the placement helpers emit one coded
    #: record per probe through it.  ``None`` when telemetry is off —
    #: purely observational either way.
    decisions: "DecisionTrace | None" = None
    #: Mutable availability the strategy consumes while placing.
    view: "AvailabilityView" = field(default=None)  # type: ignore[assignment]

    def walltime_bound(self, job: Job, kind: AllocationKind) -> float:
        """Duration bound the scheduler assumes for a placement."""
        base = (
            self.predict_runtime(job)
            if self.predict_runtime is not None
            else job.spec.walltime_req
        )
        if kind is AllocationKind.SHARED:
            return base * self.walltime_grace
        return base

    def running_end_bounds(self) -> list[tuple[float, Job]]:
        """Running jobs with their end bounds, earliest first."""
        pairs = [(self.predicted_end(job), job) for job in self.running.values()]
        pairs.sort(key=lambda p: (p[0], p[1].job_id))
        return pairs


class Strategy(abc.ABC):
    """Base class for scheduling strategies."""

    #: Short machine-readable name used in configs, reports, benches.
    name: str = "abstract"
    #: Whether the strategy benefits from periodic (timer-driven)
    #: passes in addition to event-driven ones.
    wants_periodic_pass: bool = False

    @abc.abstractmethod
    def schedule(self, ctx: ScheduleContext) -> list[Placement]:
        """Decide which pending jobs start now."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def make_strategy(name: str, **kwargs: object) -> Strategy:
    """Instantiate a strategy by its registry name.

    Recognised names: ``fcfs``, ``first_fit``, ``easy_backfill``,
    ``conservative``, ``shared_first_fit``, ``shared_backfill``.
    """
    from repro.core.conservative import ConservativeBackfillStrategy
    from repro.core.easy_backfill import EasyBackfillStrategy
    from repro.core.fcfs import FcfsStrategy
    from repro.core.first_fit import FirstFitStrategy
    from repro.core.shared_backfill import SharedBackfillStrategy
    from repro.core.shared_conservative import SharedConservativeStrategy
    from repro.core.shared_first_fit import SharedFirstFitStrategy

    registry: dict[str, type[Strategy]] = {
        FcfsStrategy.name: FcfsStrategy,
        FirstFitStrategy.name: FirstFitStrategy,
        EasyBackfillStrategy.name: EasyBackfillStrategy,
        ConservativeBackfillStrategy.name: ConservativeBackfillStrategy,
        SharedFirstFitStrategy.name: SharedFirstFitStrategy,
        SharedBackfillStrategy.name: SharedBackfillStrategy,
        SharedConservativeStrategy.name: SharedConservativeStrategy,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise ConfigError(
            f"unknown strategy {name!r}; known: {sorted(registry)}"
        ) from None
    return cls(**kwargs)  # type: ignore[arg-type]


def all_strategy_names() -> tuple[str, ...]:
    """Names of all registered strategies (baselines then sharing)."""
    return (
        "fcfs",
        "first_fit",
        "easy_backfill",
        "conservative",
        "shared_first_fit",
        "shared_backfill",
        "shared_conservative",
    )
