"""Classified I/O errors and bounded jittered-backoff retries.

A single spurious ``EIO`` from a flaky NFS server, or a transient
``ENOSPC`` while a neighbouring job's scratch files are being
reaped, should not fail a multi-hour campaign: the store and
columnar write paths wrap their atomic-write attempts in
:func:`with_io_retries`, which retries *transient* errno classes a
bounded number of times with exponential backoff, and re-raises
*permanent* ones (``EACCES``, ``EROFS``, ``ENOENT``…) immediately.

The backoff jitter is deterministic — a CRC over (pid, attempt) —
rather than drawn from :mod:`random`: fault-injected runs must stay
reproducible, and the simulation's seeded RNG streams must never be
perturbed by infrastructure code.
"""

from __future__ import annotations

import errno
import os
import time
import zlib
from typing import Callable, TypeVar

T = TypeVar("T")

#: Errno values worth retrying: the device or kernel may well succeed
#: on the next attempt.  Everything else is treated as permanent.
TRANSIENT_ERRNOS = frozenset(
    code
    for code in (
        errno.EIO,      # device-level hiccup (NFS, dying disk retrying)
        errno.ENOSPC,   # space may be reclaimed by concurrent cleanup
        errno.EDQUOT,   # quota: same recovery story as ENOSPC
        errno.EAGAIN,
        errno.EINTR,    # interrupted by a signal; always retryable
        errno.EBUSY,
        errno.ETIMEDOUT,
    )
    if code is not None
)

#: Default attempt budget: 1 initial try + 3 retries.
DEFAULT_ATTEMPTS = 4

#: First backoff delay; doubles per retry, capped at the max.
DEFAULT_BASE_DELAY_S = 0.05
DEFAULT_MAX_DELAY_S = 1.0


def classify_io_error(exc: OSError) -> str:
    """``"transient"`` or ``"permanent"`` for an :class:`OSError`."""
    return "transient" if exc.errno in TRANSIENT_ERRNOS else "permanent"


def _jitter(attempt: int) -> float:
    """Deterministic multiplier in ``[1.0, 1.25)`` keyed by (pid,
    attempt) — spreads concurrent workers without consuming any seeded
    RNG stream."""
    key = f"{os.getpid()}:{attempt}".encode("ascii")
    return 1.0 + (zlib.crc32(key) % 1000) / 4000.0


def backoff_delay(
    attempt: int,
    *,
    base_delay_s: float = DEFAULT_BASE_DELAY_S,
    max_delay_s: float = DEFAULT_MAX_DELAY_S,
) -> float:
    """Jittered exponential backoff for *attempt* (1-based).

    The same schedule :func:`with_io_retries` sleeps between I/O
    attempts, exposed so other requeue paths (the campaign work
    queue's redelivery ``not_before`` stamps) share one deterministic
    backoff authority instead of inventing their own.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    return min(
        base_delay_s * (2 ** (attempt - 1)) * _jitter(attempt),
        max_delay_s,
    )


def with_io_retries(
    op: Callable[[], T],
    *,
    attempts: int = DEFAULT_ATTEMPTS,
    base_delay_s: float = DEFAULT_BASE_DELAY_S,
    max_delay_s: float = DEFAULT_MAX_DELAY_S,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[OSError, int, float], None] | None = None,
) -> T:
    """Run *op*, retrying transient :class:`OSError` failures.

    *op* must be safe to re-run from scratch (the atomic-write helpers
    qualify: each attempt creates a fresh temp file or re-seeks to the
    manifest row count).  Permanent errors and exhausted budgets
    re-raise the original exception unchanged.  *sleep* is injectable
    so tests never wait on the wall clock.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    for attempt in range(1, attempts + 1):
        try:
            return op()
        except OSError as exc:
            if classify_io_error(exc) != "transient" or attempt == attempts:
                raise
            delay = backoff_delay(
                attempt, base_delay_s=base_delay_s, max_delay_s=max_delay_s
            )
            if on_retry is not None:
                on_retry(exc, attempt, delay)
            sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
