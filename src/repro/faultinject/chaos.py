"""``repro chaos`` — systematic crash-consistency torture harness.

One *trial* arms exactly one registered failpoint as a hard kill
(``os._exit`` at the write boundary — no ``finally`` blocks, no
``atexit``, the closest a test can get to a power cut), runs a small
but real pipeline in subprocesses, lets it die, re-runs the same
pipeline disarmed (the recovery path the store designs promise), and
then demands two things of the survivor:

* ``repro fsck`` finds every invariant intact, and
* the recovered store is **byte-identical** to a fault-free baseline
  (manifest, records, results.jsonl, stitched summary, and the
  column-file bytes up to the manifest row counts).

The sweep walks the whole failpoint catalog, so adding a new durable
write without registering (and surviving) its failpoint shows up as a
hole in the report.  Four workloads cover the durable-state
families: a multi-worker **campaign** (result records, store
manifest, results.jsonl), a windowed synthetic **replay**
(archive ingestion, boundary snapshots, columnar appends +
idempotence marks, stitched summary), a two-worker **queue**
drain (items, leases, fencing tokens) whose baseline is the
single-worker join of the same campaign — byte-identity there
proves a hard-killed worker's reclaimed work leaves no trace —
and a **serve** drive (``repro serve --drive``: HTTP submission,
idempotency-key replay, SSE streaming, supervised drain) whose
baseline is a CLI-only join of the same spec, proving the HTTP
front-end changes nothing about the durable store.

Cross-process once-only firing (the ``REPRO_FAILPOINTS_STAMP``
protocol) keeps a killed worker's replacement from re-tripping the
same failpoint forever; a stamp file doubling as the "did it actually
fire?" signal lets the harness tell *recovered* from *not hit* (a
failpoint the workload never reaches is reported as skipped, not
silently counted as a pass).
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.errors import ConfigError
from repro.faultinject.fsck import fsck_path
from repro.faultinject.registry import (
    CATALOG,
    ENV_PLAN,
    ENV_STAMP,
    EXIT_FAILPOINT_KILL,
)

#: Per-stage subprocess budget; the workloads are seconds-scale.
STAGE_TIMEOUT_S = 300.0

#: Failpoints additionally exercised with a torn (truncated) write,
#: not just a clean kill at the boundary.
TORN_WRITE_FAILPOINTS = ("columnar.append.write", "snapshot.write")

#: Bytes of payload that survive a torn-write trial.
TORN_WRITE_BYTES = 17


# ----------------------------------------------------------------------
# Byte-identity fingerprinting
# ----------------------------------------------------------------------
def store_fingerprint(root: str | Path) -> dict[str, str]:
    """SHA-256 per durable artifact under *root*.

    Covers result records, ``.campaign.json``, ``results.jsonl``,
    ``stitched.json``, the columnar manifest and the column-file bytes
    *up to the manifest row count* (bytes past it are torn-tail
    garbage, invisible by design), and archive window files.
    Deliberately excluded: ``quarantine.json`` (carries wall-clock
    provenance), dotted temp files, snapshots (deleted on success),
    bundles and telemetry (wall-clock sidecars).
    """
    root = Path(root)
    out: dict[str, str] = {}

    def put(rel: str, data: bytes) -> None:
        out[rel] = hashlib.sha256(data).hexdigest()

    for path in sorted(root.glob("*.json")):
        if path.name.startswith(".") or path.name == "quarantine.json":
            continue
        put(path.name, path.read_bytes())
    for name in (".campaign.json", "results.jsonl"):
        path = root / name
        if path.is_file():
            put(name, path.read_bytes())
    windows = root / "windows"
    if windows.is_dir():
        for path in sorted(windows.glob("*.col")):
            put(f"windows/{path.name}", path.read_bytes())
    columnar = root / "columnar"
    if (columnar / "manifest.json").is_file():
        from repro.archive.columnar import ColumnarStore

        store = ColumnarStore(columnar)
        put("columnar/manifest.json", (columnar / "manifest.json").read_bytes())
        for family in store.families():
            visible = store.rows(family) * store.dtype(family).itemsize
            data = store.path_for(family).read_bytes()[:visible]
            put(f"columnar/{family}.col", data)
    return out


# ----------------------------------------------------------------------
# Workload pipelines
# ----------------------------------------------------------------------
class _CampaignPipeline:
    """Small multi-worker campaign: 4 runs, 40 jobs, 32 nodes."""

    name = "campaign"

    def __init__(self, work: Path, workers: int, python: str) -> None:
        self.work = work
        self.workers = workers
        self.python = python

    def prepare(self) -> None:
        pass

    def commands(self, root: Path) -> list[list[str]]:
        return [[
            self.python, "-m", "repro.cli", "campaign",
            "--name", "chaos",
            "--jobs", "40",
            "--sizes", "32",
            "--seeds", "7", "11",
            "--strategies", "easy_backfill", "shared_backfill",
            "--workers", str(self.workers),
            "--store", str(root / "store"),
            "--quiet",
        ]]

    def fingerprint(self, root: Path) -> dict[str, str]:
        return store_fingerprint(root / "store")

    def fsck_roots(self, root: Path) -> list[Path]:
        return [root / "store"]


class _ReplayPipeline:
    """Windowed synthetic replay: 240 jobs over 3 windows, 32 nodes."""

    name = "replay"

    def __init__(self, work: Path, workers: int, python: str) -> None:
        self.work = work
        self.python = python
        self.trace = work / "trace.swf"

    def prepare(self) -> None:
        if self.trace.is_file():
            return
        code, tail = _run_stage(
            [
                self.python, "-m", "repro.cli", "synth", str(self.trace),
                "--jobs", "240", "--nodes", "32", "--seed", "3",
                "--load", "1.2",
            ],
            _clean_env(),
            self.work / "synth.log",
        )
        if code != 0:
            raise ConfigError(f"synth failed (exit {code}): {tail}")

    def commands(self, root: Path) -> list[list[str]]:
        return [
            [
                self.python, "-m", "repro.cli", "ingest",
                str(self.trace), str(root / "archive"),
                "--window-jobs", "80",
            ],
            [
                self.python, "-m", "repro.cli", "replay-trace",
                str(root / "archive"),
                "--store", str(root / "replay"),
                "--strategy", "easy_backfill",
                "--nodes", "32",
                "--quiet",
            ],
        ]

    def fingerprint(self, root: Path) -> dict[str, str]:
        out = {}
        for prefix, sub in (("archive", "archive"), ("replay", "replay")):
            for rel, digest in store_fingerprint(root / sub).items():
                out[f"{prefix}/{rel}"] = digest
        return out

    def fsck_roots(self, root: Path) -> list[Path]:
        return [root / "archive", root / "replay"]


class _QueuePipeline:
    """Two-worker cooperative queue drain of the campaign workload.

    The trial commands drain through ``campaign --join`` with two
    workers, so a hard kill lands inside one worker of a live fleet
    (or inside the join parent's enqueue) while the survivor — plus
    the parent's reclaim/respawn supervision — must finish the store.
    The baseline is the *single*-worker join of the same campaign:
    byte-identity against it proves leases, fencing and reclamation
    leave no trace in the durable artifacts.
    """

    name = "queue"

    def __init__(self, work: Path, workers: int, python: str) -> None:
        self.work = work
        self.workers = max(2, workers)
        self.python = python

    def prepare(self) -> None:
        pass

    def _join_command(self, root: Path, workers: int) -> list[str]:
        return [
            self.python, "-m", "repro.cli", "campaign", "--join",
            "--name", "chaos-queue",
            "--jobs", "40",
            "--sizes", "32",
            "--seeds", "7", "11",
            "--strategies", "easy_backfill", "shared_backfill",
            "--workers", str(workers),
            "--store", str(root / "store"),
            "--quiet",
        ]

    def baseline_commands(self, root: Path) -> list[list[str]]:
        return [self._join_command(root, 1)]

    def commands(self, root: Path) -> list[list[str]]:
        return [self._join_command(root, self.workers)]

    def fingerprint(self, root: Path) -> dict[str, str]:
        return store_fingerprint(root / "store")

    def fsck_roots(self, root: Path) -> list[Path]:
        return [root / "store"]


class _ServePipeline:
    """HTTP-served campaign: ``repro serve --drive`` submits a spec to
    itself over the wire (twice, under one idempotency key — the
    duplicate must replay), streams progress over SSE to completion,
    and fetches results; a supervised worker drains the store.

    A hard kill can land in the server process (submission record,
    ``service.json``, an SSE frame) or inside its drain worker (any
    store/queue failpoint) — either way the harness restarts the
    pipeline disarmed and the drained store must be fsck-clean and
    byte-identical to the baseline: a plain CLI ``campaign --join``
    of the *same spec file*, proving the HTTP path adds nothing to
    (and loses nothing from) the durable artifacts.
    """

    name = "serve"

    def __init__(self, work: Path, workers: int, python: str) -> None:
        self.work = work
        self.workers = max(1, workers)
        self.python = python
        self.spec_file = work / "serve-spec.json"

    def prepare(self) -> None:
        self.spec_file.write_text(json.dumps({
            "name": "chaos-serve",
            "jobs": 40,
            "cluster_sizes": [32],
            "seeds": [7, 11],
            "strategies": ["easy_backfill", "shared_backfill"],
        }), encoding="utf-8")

    def baseline_commands(self, root: Path) -> list[list[str]]:
        return [[
            self.python, "-m", "repro.cli", "campaign", "--join",
            "--spec", str(self.spec_file),
            "--workers", "1",
            "--store", str(root / "stores" / "baseline"),
            "--quiet",
        ]]

    def commands(self, root: Path) -> list[list[str]]:
        return [[
            self.python, "-m", "repro.cli", "serve",
            "--root", str(root),
            "--port", "0",
            "--workers", str(self.workers),
            "--heartbeat-s", "0.2",
            "--drive", str(self.spec_file),
            "--quiet",
        ]]

    def _store_dirs(self, root: Path) -> list[Path]:
        stores = root / "stores"
        if not stores.is_dir():
            return []
        return sorted(p for p in stores.iterdir() if p.is_dir())

    def fingerprint(self, root: Path) -> dict[str, str]:
        # Store directory *names* differ (baseline is hand-placed, the
        # service derives a content hash) but the bytes inside must
        # not: fingerprint the single store relative to itself.
        dirs = self._store_dirs(root)
        if len(dirs) != 1:
            return {"store-count": str(len(dirs))}
        return store_fingerprint(dirs[0])

    def fsck_roots(self, root: Path) -> list[Path]:
        return self._store_dirs(root)


_PIPELINES = {
    "campaign": _CampaignPipeline,
    "replay": _ReplayPipeline,
    "queue": _QueuePipeline,
    "serve": _ServePipeline,
}


def _clean_env() -> dict[str, str]:
    """Subprocess environment: no inherited plan, repro importable."""
    env = dict(os.environ)
    env.pop(ENV_PLAN, None)
    env.pop(ENV_STAMP, None)
    import repro

    pkg_root = str(Path(repro.__file__).resolve().parent.parent)
    parts = [pkg_root] + [
        p for p in env.get("PYTHONPATH", "").split(os.pathsep)
        if p and p != pkg_root
    ]
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


# ----------------------------------------------------------------------
# Trials and reports
# ----------------------------------------------------------------------
@dataclass
class ChaosTrial:
    """Outcome of crashing one failpoint and recovering."""

    failpoint: str
    action: str
    #: "recovered" (fired, recovered, fsck clean, byte-identical),
    #: "not-hit" (workload never reached the site), or "failed".
    status: str = "failed"
    fired: bool = False
    crash_stage: int | None = None
    crash_code: int | None = None
    fsck_ok: bool = False
    identical: bool = False
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status in ("recovered", "not-hit")

    def as_dict(self) -> dict[str, object]:
        return {
            "failpoint": self.failpoint,
            "action": self.action,
            "status": self.status,
            "fired": self.fired,
            "crash_stage": self.crash_stage,
            "crash_code": self.crash_code,
            "fsck_ok": self.fsck_ok,
            "identical": self.identical,
            "detail": self.detail,
        }


@dataclass
class ChaosReport:
    """One workload's full sweep."""

    workload: str
    trials: list[ChaosTrial] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.trials) and all(t.ok for t in self.trials)

    @property
    def recovered(self) -> int:
        return sum(1 for t in self.trials if t.status == "recovered")

    @property
    def not_hit(self) -> int:
        return sum(1 for t in self.trials if t.status == "not-hit")

    @property
    def failed(self) -> int:
        return sum(1 for t in self.trials if t.status == "failed")

    def as_dict(self) -> dict[str, object]:
        return {
            "workload": self.workload,
            "ok": self.ok,
            "recovered": self.recovered,
            "not_hit": self.not_hit,
            "failed": self.failed,
            "trials": [t.as_dict() for t in self.trials],
        }

    def render(self) -> str:
        lines = [f"chaos sweep: {self.workload} workload"]
        width = max(
            (len(f"{t.failpoint}={t.action}") for t in self.trials), default=0
        )
        for t in self.trials:
            label = f"{t.failpoint}={t.action}"
            flags = []
            if t.fired:
                flags.append("fired")
            if t.fsck_ok:
                flags.append("fsck-clean")
            if t.identical:
                flags.append("byte-identical")
            note = f"  ({t.detail})" if t.detail else ""
            lines.append(
                f"  {label:<{width}}  {t.status:<9s} "
                f"{' '.join(flags)}{note}"
            )
        lines.append(
            f"  {self.recovered} recovered, {self.not_hit} not hit, "
            f"{self.failed} failed"
        )
        return "\n".join(lines)


def _run_stage(
    cmd: list[str], env: dict[str, str], log_path: Path
) -> tuple[int, str]:
    """Run one pipeline stage; returns (exit code, output tail).

    Output goes to a log *file*, never a pipe: a hard-killed campaign
    parent leaves orphaned pool workers holding its stderr descriptor,
    and reading a pipe until EOF would block on them.  Waiting only on
    the direct child is exactly the semantics a supervisor has.
    """
    with open(log_path, "ab") as log:
        log.write(f"$ {' '.join(cmd)}\n".encode())
        log.flush()
        proc = subprocess.run(
            cmd, env=env, stdout=log, stderr=log, timeout=STAGE_TIMEOUT_S
        )
    try:
        text = log_path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        text = ""
    return proc.returncode, text.strip()[-400:].replace("\n", " | ")


def run_chaos(
    work_dir: str | Path,
    workload: str = "campaign",
    workers: int = 2,
    failpoints: Sequence[str] | None = None,
    python: str = sys.executable,
    progress: Callable[[str], None] | None = None,
) -> ChaosReport:
    """Sweep *failpoints* (default: the whole catalog) over *workload*.

    Every trial gets a fresh pipeline root under *work_dir*; the
    fault-free baseline runs first and its fingerprint is the identity
    every recovered store must reproduce.
    """
    if workload not in _PIPELINES:
        raise ConfigError(
            f"unknown chaos workload {workload!r} "
            f"(one of {', '.join(sorted(_PIPELINES))})"
        )
    names = list(failpoints) if failpoints is not None else sorted(CATALOG)
    for name in names:
        if name not in CATALOG:
            raise ConfigError(
                f"unknown failpoint {name!r}; registered: "
                f"{', '.join(sorted(CATALOG))}"
            )
    work = Path(work_dir)
    work.mkdir(parents=True, exist_ok=True)
    pipeline = _PIPELINES[workload](work, workers, python)
    pipeline.prepare()

    say = progress if progress is not None else (lambda line: None)
    baseline_root = work / f"{workload}-baseline"
    say(f"chaos[{workload}]: building fault-free baseline")
    _run_pipeline_clean(pipeline, baseline_root)
    for fsck_root in pipeline.fsck_roots(baseline_root):
        baseline_report = fsck_path(fsck_root)
        if not baseline_report.ok:
            raise ConfigError(
                f"baseline store {fsck_root} fails fsck before any fault "
                f"was injected:\n{baseline_report.render()}"
            )
    baseline = pipeline.fingerprint(baseline_root)

    report = ChaosReport(workload=workload)
    trial_specs = [(name, "kill", 0) for name in names] + [
        (name, "truncate", TORN_WRITE_BYTES)
        for name in TORN_WRITE_FAILPOINTS
        if name in names
    ]
    for index, (name, action, arg) in enumerate(trial_specs):
        trial = _run_trial(
            pipeline,
            work / f"{workload}-t{index:02d}-{name.replace('.', '-')}-{action}",
            name,
            action,
            arg,
            baseline,
        )
        report.trials.append(trial)
        say(
            f"chaos[{workload}] {name}={action}: {trial.status}"
            + (f" ({trial.detail})" if trial.detail else "")
        )
    return report


def _run_pipeline_clean(pipeline, root: Path) -> None:
    """Fault-free run; pipelines may define a distinct baseline shape
    (the queue pipeline's baseline is a single-worker drain)."""
    commands = getattr(pipeline, "baseline_commands", pipeline.commands)
    root.mkdir(parents=True, exist_ok=True)
    for stage, cmd in enumerate(commands(root)):
        code, tail = _run_stage(
            cmd, _clean_env(), root / f"stage-{stage}.log"
        )
        if code != 0:
            raise ConfigError(
                f"fault-free pipeline stage failed (exit {code}): {tail}"
            )


def _run_trial(
    pipeline,
    root: Path,
    name: str,
    action: str,
    arg: int,
    baseline: dict[str, str],
) -> ChaosTrial:
    trial = ChaosTrial(failpoint=name, action=action)
    root.mkdir(parents=True, exist_ok=True)
    stamp_dir = root / "stamps"
    stamp_dir.mkdir(exist_ok=True)
    plan = f"{name}={action}:1"
    if action == "truncate":
        plan += f":{arg}"
    armed_env = _clean_env()
    armed_env[ENV_PLAN] = plan
    armed_env[ENV_STAMP] = str(stamp_dir)

    crashed = False
    for stage, cmd in enumerate(pipeline.commands(root)):
        env = _clean_env() if crashed else armed_env
        code, tail = _run_stage(cmd, env, root / f"stage-{stage}.log")
        if code != 0 and not crashed:
            # The injected fault surfaced — either the distinctive
            # kill status, or a nonzero exit after a worker died.
            crashed = True
            trial.crash_stage = stage
            trial.crash_code = code
            # Recovery: re-run the identical stage with faults off.
            code, tail = _run_stage(
                cmd, _clean_env(), root / f"stage-{stage}.log"
            )
        if code != 0:
            trial.status = "failed"
            trial.detail = f"stage {stage} exit {code}: {tail}"
            return trial

    trial.fired = any(stamp_dir.iterdir())
    if trial.crash_stage is not None and not trial.fired:
        trial.status = "failed"
        trial.detail = (
            f"stage {trial.crash_stage} exited "
            f"{trial.crash_code} without the failpoint firing"
        )
        return trial

    for fsck_root in pipeline.fsck_roots(root):
        fsck_report = fsck_path(fsck_root)
        if not fsck_report.ok:
            trial.status = "failed"
            first = next(
                (f for f in fsck_report.findings if f.level == "error"), None
            )
            trial.detail = (
                f"fsck: {first.code} {first.message}" if first else "fsck"
            )
            return trial
    trial.fsck_ok = True

    recovered = pipeline.fingerprint(root)
    if recovered != baseline:
        trial.status = "failed"
        differing = sorted(
            set(baseline) ^ set(recovered)
        ) or sorted(
            k for k in baseline if baseline[k] != recovered.get(k)
        )
        trial.detail = f"diverges from baseline: {', '.join(differing[:4])}"
        return trial
    trial.identical = True
    trial.status = "recovered" if trial.fired else "not-hit"
    return trial


def default_chaos_dir() -> str:
    """A fresh scratch directory for one ``repro chaos`` invocation."""
    return tempfile.mkdtemp(prefix="repro-chaos-")
