"""Deterministic fault injection for durable-state boundaries.

Kept deliberately light: importing this package pulls in only the
registry and retry helpers (the modules the instrumented write paths
need on their hot path).  The heavier tools — the :mod:`~repro.
faultinject.fsck` invariant checker and the :mod:`~repro.faultinject.
chaos` crash sweep — are imported lazily by the CLI.
"""

from repro.faultinject.registry import (
    CATALOG,
    ENV_PLAN,
    ENV_STAMP,
    EXIT_FAILPOINT_KILL,
    FailpointSpec,
    FaultPlan,
    armed,
    arm,
    disarm,
    failpoint,
    failpoint_write,
    parse_plan,
)
from repro.faultinject.retry import (
    TRANSIENT_ERRNOS,
    backoff_delay,
    classify_io_error,
    with_io_retries,
)

__all__ = [
    "CATALOG",
    "ENV_PLAN",
    "ENV_STAMP",
    "EXIT_FAILPOINT_KILL",
    "FailpointSpec",
    "FaultPlan",
    "TRANSIENT_ERRNOS",
    "arm",
    "armed",
    "backoff_delay",
    "classify_io_error",
    "disarm",
    "failpoint",
    "failpoint_write",
    "parse_plan",
    "with_io_retries",
]
