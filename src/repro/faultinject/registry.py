"""Named-failpoint registry: deterministic fault injection.

A *failpoint* is a named site on a durable-write path.  Disarmed (the
default), every hook is a module-global ``None`` check — no dict
lookup, no allocation, nothing measurable (the guard in
``benchmarks/test_telemetry_overhead.py`` holds this to single-digit
nanoseconds over the bare call overhead).  Armed, a :class:`FaultPlan`
decides what happens on the Nth hit of a named site:

``eio`` / ``enospc``
    raise :class:`OSError` with that errno — exercises the
    transient-error retry path in :mod:`repro.faultinject.retry`;
``kill``
    ``os._exit(EXIT_FAILPOINT_KILL)`` — simulate a power cut at
    exactly this boundary (no ``atexit``, no ``finally`` blocks);
``truncate:<k>``
    write only the first *k* bytes of the payload, fsync them, then
    hard-kill — simulate a torn write that reached the platter.

Plans are armed programmatically (:func:`arm` / :func:`armed`) or via
the environment so subprocesses inherit them::

    REPRO_FAILPOINTS="store.result.write=kill:1;snapshot.write=eio:2"
    REPRO_FAILPOINTS_STAMP=/path/to/stamp-dir   # optional, see below

Hit counts are per-process, which breaks down for ``kill``-style
plans under a supervising runner: the killed process's replacement
would hit (and fire) the same failpoint again, forever.  The *stamp
dir* makes firing once-only **across processes**: before tripping, a
plan claims ``<stamp>/<name>.fired`` with ``O_EXCL``; a second
process that loses the claim skips the fault and proceeds normally.
The chaos harness (:mod:`repro.faultinject.chaos`) relies on this to
crash a pipeline exactly once per trial and then watch it recover.
"""

from __future__ import annotations

import errno as _errno
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

from repro.errors import ConfigError

#: Environment variable carrying an armed plan into subprocesses.
ENV_PLAN = "REPRO_FAILPOINTS"

#: Optional directory for cross-process once-only firing stamps.
ENV_STAMP = "REPRO_FAILPOINTS_STAMP"

#: Distinctive exit status of a ``kill``/``truncate`` trip, so a
#: supervisor can tell "crashed by injection" from any real failure.
EXIT_FAILPOINT_KILL = 86

#: Every registered failpoint, name → the write boundary it guards.
#: Instrumented modules call :func:`failpoint` / :func:`failpoint_write`
#: with exactly these names; ``repro chaos`` sweeps this catalog.
CATALOG: dict[str, str] = {
    "store.result.write": "campaign result record: temp-file payload write",
    "store.result.rename": "campaign result record: atomic rename into place",
    "store.manifest.write": "campaign .campaign.json manifest: temp-file write",
    "store.manifest.rename": "campaign .campaign.json manifest: atomic rename",
    "store.jsonl.write": "results.jsonl export: temp-file payload write",
    "snapshot.write": "state snapshot: header+payload temp-file write",
    "snapshot.rename": "state snapshot: atomic rename into place",
    "columnar.append.write": "columnar batch append: in-place column-file write",
    "columnar.manifest.write": "columnar manifest: temp-file write",
    "columnar.manifest.rename": "columnar manifest: atomic rename",
    "archive.window.write": "archive window record file: temp-file write",
    "archive.window.rename": "archive window record file: atomic rename",
    "archive.manifest.write": "archive manifest/quarantine: temp-file write",
    "archive.manifest.rename": "archive manifest/quarantine: atomic rename",
    "stitched.write": "replay stitched.json summary: temp-file write",
    "bundle.write": "crash replay bundle: document write",
    "queue.item.write": "campaign queue item: temp-file write + rename",
    "queue.lease.create": "campaign queue lease: O_EXCL claim-file write",
    "queue.lease.renew": "campaign queue lease: heartbeat refresh",
    "queue.lease.release": "campaign queue lease: verified unlink",
    "queue.metrics.write": "fleet observability event: per-process "
                           "sidecar append",
    "service.submit.write": "service submission record: temp-file write",
    "service.manifest.write": "service.json coordinates: temp-file write",
    "service.key.write": "service idempotency-key binding: temp-file "
                         "write before the atomic link",
    "service.stream.write": "service SSE frame: pre-write boundary",
}

_ACTIONS = ("eio", "enospc", "kill", "truncate")


@dataclass(frozen=True)
class FailpointSpec:
    """One armed fault: fire *action* on the *nth* hit of *name*."""

    name: str
    action: str
    nth: int = 1
    #: Byte offset for ``truncate`` (how much of the payload survives).
    arg: int = 0

    def encode(self) -> str:
        """Inverse of :func:`parse_plan` for one spec."""
        out = f"{self.name}={self.action}:{self.nth}"
        if self.action == "truncate":
            out += f":{self.arg}"
        return out


def parse_plan(raw: str) -> list[FailpointSpec]:
    """Parse ``name=action:nth[:arg]`` clauses separated by ``;``."""
    specs: list[FailpointSpec] = []
    for clause in raw.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        name, sep, rest = clause.partition("=")
        name = name.strip()
        if not sep or not rest:
            raise ConfigError(
                f"failpoint clause {clause!r}: expected name=action:nth[:arg]"
            )
        if name not in CATALOG:
            known = ", ".join(sorted(CATALOG))
            raise ConfigError(
                f"unknown failpoint {name!r}; registered: {known}"
            )
        parts = rest.split(":")
        action = parts[0].strip()
        if action not in _ACTIONS:
            raise ConfigError(
                f"failpoint {name!r}: unknown action {action!r} "
                f"(one of {', '.join(_ACTIONS)})"
            )
        try:
            nth = int(parts[1]) if len(parts) > 1 and parts[1] else 1
            arg = int(parts[2]) if len(parts) > 2 and parts[2] else 0
        except ValueError:
            raise ConfigError(
                f"failpoint clause {clause!r}: nth/arg must be integers"
            ) from None
        if nth < 1:
            raise ConfigError(f"failpoint {name!r}: nth must be >= 1")
        if arg < 0:
            raise ConfigError(f"failpoint {name!r}: arg must be >= 0")
        specs.append(FailpointSpec(name=name, action=action, nth=nth, arg=arg))
    if not specs:
        raise ConfigError("failpoint plan is empty")
    return specs


class FaultPlan:
    """Armed failpoint schedule with per-process hit counting."""

    def __init__(
        self,
        specs: Mapping[str, FailpointSpec] | list[FailpointSpec],
        stamp_dir: str | Path | None = None,
    ) -> None:
        if not isinstance(specs, Mapping):
            specs = {spec.name: spec for spec in specs}
        self.specs: dict[str, FailpointSpec] = dict(specs)
        self.stamp_dir = Path(stamp_dir) if stamp_dir else None
        self.hits: dict[str, int] = {}
        self._fired: set[str] = set()

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "FaultPlan | None":
        environ = os.environ if environ is None else environ
        raw = environ.get(ENV_PLAN, "").strip()
        if not raw:
            return None
        return cls(parse_plan(raw), stamp_dir=environ.get(ENV_STAMP) or None)

    def encode(self) -> str:
        """Environment encoding of this plan (:data:`ENV_PLAN` value)."""
        return ";".join(
            self.specs[name].encode() for name in sorted(self.specs)
        )

    # ------------------------------------------------------------------
    def check(self, name: str) -> FailpointSpec | None:
        """Count a hit; return the spec when this hit should fire."""
        spec = self.specs.get(name)
        if spec is None or name in self._fired:
            return None
        count = self.hits.get(name, 0) + 1
        self.hits[name] = count
        if count != spec.nth:
            return None
        self._fired.add(name)
        if not self._claim(name):
            return None  # another process already fired this one
        return spec

    def _claim(self, name: str) -> bool:
        if self.stamp_dir is None:
            return True
        try:
            fd = os.open(
                self.stamp_dir / f"{name}.fired",
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            return False
        except OSError:
            return True  # unwritable stamp dir: fire anyway
        try:
            os.write(fd, f"{os.getpid()}\n".encode("ascii"))
        finally:
            os.close(fd)
        return True


# ----------------------------------------------------------------------
# Module state and the two hooks on the write paths
# ----------------------------------------------------------------------
_PLAN: FaultPlan | None = None


def arm(plan: FaultPlan) -> None:
    """Arm *plan* in this process (tests; env arming covers children)."""
    global _PLAN
    _PLAN = plan


def disarm() -> None:
    global _PLAN
    _PLAN = None


class armed:
    """``with armed(plan):`` — scoped arming for in-process tests."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._saved: FaultPlan | None = None

    def __enter__(self) -> FaultPlan:
        self._saved = _PLAN
        arm(self.plan)
        return self.plan

    def __exit__(self, *exc_info: object) -> None:
        global _PLAN
        _PLAN = self._saved


def _trip(spec: FailpointSpec) -> None:
    if spec.action in ("kill", "truncate"):
        os._exit(EXIT_FAILPOINT_KILL)
    code = _errno.EIO if spec.action == "eio" else _errno.ENOSPC
    raise OSError(code, os.strerror(code), f"failpoint:{spec.name}")


def failpoint(name: str) -> None:
    """Trip site *name* if an armed plan says so; else do nothing.

    The disarmed path is a single global load plus an identity check —
    callers may keep this on hot paths.
    """
    if _PLAN is None:
        return
    spec = _PLAN.check(name)
    if spec is not None:
        _trip(spec)


def failpoint_write(name: str, handle, data: bytes) -> None:
    """``handle.write(data)`` with an optional injected fault.

    Beyond the plain :func:`failpoint` actions, ``truncate:<k>``
    writes only ``data[:k]``, pushes those bytes to disk, and
    hard-kills — the caller's file ends up holding a genuinely torn
    payload, exactly what a power cut mid-write leaves behind.
    """
    if _PLAN is None:
        handle.write(data)
        return
    spec = _PLAN.check(name)
    if spec is None:
        handle.write(data)
        return
    if spec.action == "truncate":
        handle.write(data[: min(spec.arg, len(data))])
        handle.flush()
        try:
            os.fsync(handle.fileno())
        except OSError:
            pass
    _trip(spec)


def iter_catalog() -> Iterator[tuple[str, str]]:
    """Registered failpoints in stable (sorted) order."""
    return iter(sorted(CATALOG.items()))


# Arm from the environment at import so worker subprocesses (which
# inherit the parent's environment under every start method) see the
# plan without any explicit plumbing.
_env_plan = FaultPlan.from_env()
if _env_plan is not None:
    arm(_env_plan)
del _env_plan
