"""``repro fsck`` — on-disk invariant checking for durable state.

Walks a campaign/replay result store (or an ingested archive) and
verifies every invariant the crash-recovery design promises:

* **result records** parse, carry the schema version, and match their
  own content hash (``run_id_of(params)`` == file name — a record can
  never be attributed to different params);
* **manifest ↔ batch consistency** — the columnar manifest's row
  counts fit inside the column files; surplus bytes past the count
  are a *torn tail* (recoverable by design, reported as a warning);
* **idempotence-mark coherence** — every mark's start row lies inside
  its family, every replayed window has its marks, and the ``jobs``
  row count equals the sum of per-window flush counts;
* **snapshot content hashes** — header parses, payload length and
  SHA-256 match, without unpickling (fsck never executes payloads);
* **stitched.json ↔ columnar agreement** — the persisted whole-trace
  summary equals a fresh recompute from the column files;
* **archive integrity** — window files match the manifest's row
  counts and the ``archive_id`` content hash recomputes.

* **work-queue hygiene** — orphaned or dead-holder lease files and
  stale failpoint-stamp / temp residue under ``<store>/.queue/`` are
  warnings (the queue supervisor recovers all of them); ``--repair``
  reaps the provably-safe subset.

Leftover ``.*.tmp`` files (a crash between ``mkstemp`` and
``os.replace``) are warnings: harmless garbage, never visible data.

Exit codes (via the CLI): 0 all invariants hold, 1 violations found,
2 the path is not a store/archive at all.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigError, SnapshotError

#: Result-record file names are 16-hex-char content hashes.
_RECORD_RE = re.compile(r"^[0-9a-f]{16}\.json$")

#: Visible JSON files in a store root that are not result records.
_SPECIAL_JSON = {"stitched.json", "quarantine.json"}


@dataclass(frozen=True)
class Finding:
    """One invariant check outcome worth reporting."""

    level: str  # "error" | "warning"
    code: str   # stable machine-readable kind, e.g. "record.hash"
    path: str
    message: str

    def render(self) -> str:
        return f"{self.level.upper():7s} [{self.code}] {self.path}: {self.message}"


@dataclass
class FsckReport:
    """Everything one fsck pass found (and how much it looked at)."""

    root: str
    kind: str  # "store" | "columnar" | "archive"
    findings: list[Finding] = field(default_factory=list)
    checked: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not any(f.level == "error" for f in self.findings)

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.level == "error")

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.level == "warning")

    def add(self, level: str, code: str, path: str | Path, message: str) -> None:
        self.findings.append(Finding(level, code, str(path), message))

    def count(self, what: str, n: int = 1) -> None:
        self.checked[what] = self.checked.get(what, 0) + n

    def as_dict(self) -> dict[str, object]:
        return {
            "root": self.root,
            "kind": self.kind,
            "ok": self.ok,
            "checked": dict(sorted(self.checked.items())),
            "findings": [
                {
                    "level": f.level,
                    "code": f.code,
                    "path": f.path,
                    "message": f.message,
                }
                for f in self.findings
            ],
        }

    def render(self) -> str:
        lines = [f"fsck {self.root} ({self.kind})"]
        for f in self.findings:
            lines.append("  " + f.render())
        checked = ", ".join(
            f"{n} {what}" for what, n in sorted(self.checked.items())
        )
        verdict = "clean" if self.ok else "INCONSISTENT"
        lines.append(
            f"  checked: {checked or 'nothing'}"
        )
        lines.append(
            f"  {verdict}: {self.errors} error(s), {self.warnings} warning(s)"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Entry point and dispatch
# ----------------------------------------------------------------------
def fsck_path(root: str | Path, *, repair: bool = False) -> FsckReport:
    """Check whatever durable artifact lives at *root*.

    Dispatches on the on-disk markers: an archive manifest, a
    standalone columnar store, or a campaign/replay result store.
    Raises :class:`~repro.errors.ConfigError` when *root* is none of
    those (CLI exit 2).  With *repair*, queue leases whose holder pid
    is provably dead are reaped, and stale failpoint stamps / temp
    residue under ``.queue/`` is deleted — repair never touches
    records, items, or any other visible data.
    """
    from repro.archive.columnar import COLUMNAR_MAGIC
    from repro.archive.ingest import ARCHIVE_MAGIC

    root = Path(root)
    if not root.is_dir():
        raise ConfigError(f"{root}: not a directory")
    manifest = root / "manifest.json"
    if manifest.is_file():
        try:
            head = manifest.read_text(encoding="utf-8", errors="replace")[:4096]
        except OSError:
            head = ""
        if ARCHIVE_MAGIC in head:
            return fsck_archive(root)
        if COLUMNAR_MAGIC in head:
            report = FsckReport(root=str(root), kind="columnar")
            _check_columnar(report, root)
            return report
    is_store = (
        (root / ".campaign.json").is_file()
        or (root / "stitched.json").is_file()
        or (root / "columnar").is_dir()
        or any(_RECORD_RE.match(p.name) for p in root.glob("*.json"))
    )
    if not is_store:
        raise ConfigError(
            f"{root}: not a repro result store, columnar store or archive"
        )
    return fsck_store(root, repair=repair)


# ----------------------------------------------------------------------
# Campaign / replay result stores
# ----------------------------------------------------------------------
def fsck_store(root: str | Path, *, repair: bool = False) -> FsckReport:
    """Check a campaign (or replay) result store directory."""
    root = Path(root)
    report = FsckReport(root=str(root), kind="store")
    records = _check_records(report, root)
    _check_campaign_manifest(report, root)
    _check_results_jsonl(report, root, records)
    _check_tmp_residue(report, root)
    _check_queue(report, root, records, repair=repair)
    for sub in ("snapshots", "boundaries"):
        directory = root / sub
        if directory.is_dir():
            for snap in sorted(directory.glob("*.snap")):
                _check_snapshot(report, snap)
    columnar = root / "columnar"
    if (columnar / "manifest.json").is_file():
        store = _check_columnar(report, columnar)
        if store is not None:
            _check_replay_coherence(report, root, store, records)
    return report


def _check_records(report: FsckReport, root: Path) -> dict[str, dict]:
    from repro.campaign.spec import run_id_of
    from repro.campaign.store import STORE_VERSION

    records: dict[str, dict] = {}
    for path in sorted(root.glob("*.json")):
        if path.name.startswith("."):
            continue
        if not _RECORD_RE.match(path.name):
            if path.name not in _SPECIAL_JSON:
                report.add(
                    "warning", "store.unexpected-file", path,
                    "not a result record (records are 16-hex-char hashes)",
                )
            continue
        report.count("records")
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            report.add("error", "record.parse", path, f"unreadable: {exc}")
            continue
        run_id = path.stem
        if record.get("run_id") != run_id:
            report.add(
                "error", "record.run-id", path,
                f"record claims run_id {record.get('run_id')!r}",
            )
        params = record.get("params")
        if not isinstance(params, dict):
            report.add("error", "record.params", path, "params missing")
        elif run_id_of(params) != run_id:
            report.add(
                "error", "record.hash", path,
                f"params hash to {run_id_of(params)}, not the file name "
                f"— the record was renamed or tampered with",
            )
        if record.get("store_version") != STORE_VERSION:
            report.add(
                "error", "record.version", path,
                f"store_version {record.get('store_version')!r} "
                f"(this build writes {STORE_VERSION})",
            )
        if "result" not in record:
            report.add("error", "record.result", path, "no result payload")
        records[run_id] = record
    return records


def _check_campaign_manifest(report: FsckReport, root: Path) -> None:
    path = root / ".campaign.json"
    if not path.is_file():
        return
    report.count("manifests")
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        report.add("error", "manifest.parse", path, f"unreadable: {exc}")
        return
    if not isinstance(manifest, dict):
        report.add("error", "manifest.shape", path, "not a JSON object")


def _check_results_jsonl(
    report: FsckReport, root: Path, records: dict[str, dict]
) -> None:
    path = root / "results.jsonl"
    if not path.is_file():
        return
    report.count("jsonl-files")
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        report.add("error", "jsonl.read", path, f"unreadable: {exc}")
        return
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            report.add(
                "error", "jsonl.parse", path,
                f"line {lineno} is not valid JSON (torn export?)",
            )
            continue
        run_id = entry.get("run_id") if isinstance(entry, dict) else None
        if not isinstance(run_id, str):
            report.add(
                "error", "jsonl.run-id", path, f"line {lineno} has no run_id"
            )
            continue
        stored = records.get(run_id)
        if stored is None:
            report.add(
                "warning", "jsonl.orphan", path,
                f"line {lineno}: run {run_id} has no record file "
                f"(deleted after export?)",
            )
        elif stored != entry:
            report.add(
                "error", "jsonl.stale", path,
                f"line {lineno}: run {run_id} disagrees with its record "
                f"file — re-export results.jsonl",
            )


def _check_tmp_residue(report: FsckReport, root: Path) -> None:
    for directory in (root, root / "columnar", root / "windows"):
        if not directory.is_dir():
            continue
        for tmp in sorted(directory.glob(".*.tmp")):
            report.add(
                "warning", "store.tmp-residue", tmp,
                "leftover temp file from an interrupted atomic write "
                "(harmless; safe to delete)",
            )


def _check_queue(
    report: FsckReport, root: Path, records: dict[str, dict],
    *, repair: bool = False,
) -> None:
    """Durable work-queue hygiene under ``<store>/.queue/``.

    Leases are advisory claims, so problems here are *warnings*, not
    errors: the queue's own supervisor pass recovers every one of
    them.  fsck surfaces them (a human reading ``repro fsck`` output
    should know a worker died holding a lease) and, with *repair*,
    reaps the provably-safe subset — leases whose recorded holder pid
    is dead on this host, stale failpoint stamps, and temp residue.
    """
    queue_root = root / ".queue"
    if not queue_root.is_dir():
        return
    from repro.campaign.lease import (
        LEASE_SUFFIX,
        LeaseDir,
        local_host,
        pid_alive,
    )

    items_dir = queue_root / "items"
    leases = LeaseDir(queue_root / "leases")
    for run_id in leases.list():
        report.count("queue-leases")
        lease = leases.read(run_id)
        if lease is None:
            continue
        path = leases.path_for(run_id)
        has_item = (items_dir / f"{run_id}.json").is_file()
        if not has_item:
            report.add(
                "warning", "queue.lease-orphan", path,
                "lease without a queue item (holder crashed between "
                "retiring the item and releasing the lease); the next "
                "supervisor pass removes it",
            )
        if lease.pid == 0:
            report.add(
                "warning", "queue.lease-unreadable", path,
                "empty or malformed lease (holder killed mid-claim); "
                "ages out via the queue TTL",
            )
            continue
        dead = lease.host == local_host() and not pid_alive(lease.pid)
        if dead:
            if repair:
                path.unlink(missing_ok=True)
                report.add(
                    "warning", "queue.lease-repaired", path,
                    f"reaped: holder pid {lease.pid} is dead "
                    f"(token {lease.token})",
                )
            else:
                report.add(
                    "warning", "queue.lease-dead-holder", path,
                    f"holder pid {lease.pid}@{lease.host} is dead "
                    f"(token {lease.token}); --repair reaps it",
                )
    for item_path in sorted(items_dir.glob("*.json")):
        if item_path.name.startswith("."):
            continue
        report.count("queue-items")
        if item_path.stem in records:
            report.add(
                "warning", "queue.item-done", item_path,
                "queue item for a run whose result is already stored "
                "(crash between commit and retirement); the next "
                "claimant retires it",
            )
    residue = []
    for pattern in ("*.fired", "*.tmp", ".*.tmp"):
        residue.extend(queue_root.rglob(pattern))
    for stray in sorted(set(residue)):
        if stray.suffix == ".tmp" and stray.name.endswith(LEASE_SUFFIX + ".tmp"):
            kind = "lease rewrite"
        elif stray.suffix == ".fired":
            kind = "failpoint stamp"
        else:
            kind = "atomic write"
        if repair:
            stray.unlink(missing_ok=True)
            report.add(
                "warning", "queue.residue-repaired", stray,
                f"deleted stale {kind} residue",
            )
        else:
            report.add(
                "warning", "queue.residue", stray,
                f"leftover {kind} residue from an interrupted worker "
                f"(harmless; --repair deletes it)",
            )
    _check_metrics_sidecars(report, queue_root, repair=repair)


def _check_metrics_sidecars(
    report: FsckReport, queue_root: Path, *, repair: bool
) -> None:
    """Fleet event sidecars (``metrics/*.events.jsonl``) hygiene.

    Appends are fsync'd but a hard kill mid-append (the
    ``queue.metrics.write`` failpoint) leaves a torn final line.
    Readers tolerate it; fsck names it, and --repair truncates the
    file back to its last complete line.  A garbled line *before* the
    tail cannot come from a crash (O_APPEND single-write lines), so
    it is called out separately as likely tampering.
    """
    metrics_dir = queue_root / "metrics"
    if not metrics_dir.is_dir():
        return
    for path in sorted(metrics_dir.glob("*.events.jsonl")):
        report.count("queue-metrics-sidecars")
        try:
            raw = path.read_bytes()
        except OSError as exc:
            report.add(
                "warning", "queue.metrics-unreadable", path,
                f"unreadable event sidecar: {exc}",
            )
            continue
        lines = raw.split(b"\n")
        # 0-based index of each line's first byte in the file.
        offsets = [0]
        for line in lines[:-1]:
            offsets.append(offsets[-1] + len(line) + 1)
        bad: list[int] = []
        last_nonempty = -1
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            last_nonempty = index
            try:
                ok = isinstance(json.loads(line), dict)
            except (json.JSONDecodeError, UnicodeDecodeError):
                ok = False
            if not ok:
                bad.append(index)
        if not bad:
            continue
        if bad == [last_nonempty]:
            if repair:
                with path.open("r+b") as handle:
                    handle.truncate(offsets[bad[0]])
                report.add(
                    "warning", "queue.metrics-repaired", path,
                    f"truncated torn tail back to {offsets[bad[0]]} bytes",
                )
            else:
                report.add(
                    "warning", "queue.metrics-torn-tail", path,
                    "torn final event line (holder killed mid-append); "
                    "readers skip it; --repair truncates it",
                )
        else:
            report.add(
                "warning", "queue.metrics-garbled", path,
                f"unparseable event lines {[i + 1 for i in bad]} before "
                f"the tail — not a crash signature; inspect before "
                f"trusting metrics",
            )


def _check_snapshot(report: FsckReport, path: Path) -> None:
    """Header + content-hash verification, without unpickling."""
    from repro.snapshot.state import read_snapshot_header

    report.count("snapshots")
    try:
        header = read_snapshot_header(path)
    except SnapshotError as exc:
        report.add("error", "snapshot.header", path, str(exc))
        return
    try:
        with path.open("rb") as handle:
            handle.readline()
            payload = handle.read()
    except OSError as exc:
        report.add("error", "snapshot.read", path, f"unreadable: {exc}")
        return
    if len(payload) != header.get("payload_bytes"):
        report.add(
            "error", "snapshot.truncated", path,
            f"payload holds {len(payload)} of "
            f"{header.get('payload_bytes')} bytes",
        )
        return
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("payload_sha256"):
        report.add(
            "error", "snapshot.checksum", path,
            "payload SHA-256 does not match the header",
        )


# ----------------------------------------------------------------------
# Columnar stores
# ----------------------------------------------------------------------
def _check_columnar(report: FsckReport, root: Path):
    """Manifest ↔ column-file consistency; returns the open store
    (None when the manifest itself is unreadable)."""
    from repro.archive.columnar import ColumnarStore

    try:
        store = ColumnarStore(root)
    except ConfigError as exc:
        report.add("error", "columnar.manifest", root / "manifest.json", str(exc))
        return None
    for family in store.families():
        report.count("families")
        rows = store.rows(family)
        try:
            itemsize = store.dtype(family).itemsize
        except (ConfigError, TypeError, ValueError) as exc:
            report.add(
                "error", "columnar.dtype", root / "manifest.json",
                f"family {family!r}: bad dtype: {exc}",
            )
            continue
        path = store.path_for(family)
        try:
            size = path.stat().st_size
        except OSError:
            if rows:
                report.add(
                    "error", "columnar.missing", path,
                    f"manifest says {rows} rows but the column file "
                    f"is missing",
                )
            continue
        need = rows * itemsize
        if size < need:
            report.add(
                "error", "columnar.rows", path,
                f"manifest says {rows} rows ({need} bytes) but the file "
                f"holds only {size} bytes",
            )
        elif size > need:
            report.add(
                "warning", "columnar.torn-tail", path,
                f"{size - need} surplus bytes past the manifest's row "
                f"count (torn append; invisible and overwritten on the "
                f"next write)",
            )
    for key, start in sorted(store._manifest["marks"].items()):
        report.count("marks")
        if not isinstance(start, int) or start < 0:
            report.add(
                "error", "mark.start", root / "manifest.json",
                f"mark {key!r}: start row {start!r} is not a "
                f"non-negative integer",
            )
            continue
        parts = key.split(":")
        family = parts[1] if len(parts) == 3 else None
        if family in store.families() and start > store.rows(family):
            report.add(
                "error", "mark.range", root / "manifest.json",
                f"mark {key!r}: start row {start} lies past the "
                f"{store.rows(family)} rows of family {family!r}",
            )
    return store


# ----------------------------------------------------------------------
# Replay-specific coherence
# ----------------------------------------------------------------------
def _check_replay_coherence(
    report: FsckReport, root: Path, store, records: dict[str, dict]
) -> None:
    if "windows" not in store.families():
        return
    windows = store.read("windows")
    indices = [int(w) for w in windows["window"]]
    if sorted(indices) != list(range(len(indices))):
        report.add(
            "error", "windows.sequence", store.path_for("windows"),
            f"window indices {sorted(indices)} are not the contiguous "
            f"range 0..{len(indices) - 1}",
        )
    flushed_total = int(windows["jobs_flushed"].sum()) if len(windows) else 0
    jobs_rows = store.rows("jobs")
    if flushed_total != jobs_rows:
        report.add(
            "error", "windows.flush-sum", store.path_for("jobs"),
            f"windows say {flushed_total} jobs were flushed but the "
            f"jobs family holds {jobs_rows} rows",
        )
    marks = store._manifest["marks"]
    chains = {k.split(":")[0] for k in marks if len(k.split(":")) == 3}
    by_window = {int(w["window"]): w for w in windows}
    for chain in sorted(chains):
        for idx, row in by_window.items():
            if f"{chain}:windows:{idx}" not in marks:
                report.add(
                    "error", "mark.window-missing", store.root,
                    f"window {idx} has rows but no "
                    f"{chain}:windows:{idx} idempotence mark",
                )
            if (
                int(row["jobs_flushed"]) > 0
                and f"{chain}:jobs:{idx}" not in marks
            ):
                report.add(
                    "error", "mark.jobs-missing", store.root,
                    f"window {idx} flushed {int(row['jobs_flushed'])} "
                    f"jobs but has no {chain}:jobs:{idx} mark",
                )
    # Window records (when this is a replay store) must agree with the
    # columnar window rows — the same fact persisted through two paths.
    for run_id, record in sorted(records.items()):
        result = record.get("result")
        if not isinstance(result, dict) or result.get("kind") != "replay_window":
            continue
        idx = int(result.get("window", -1))
        row = by_window.get(idx)
        if row is None:
            report.add(
                "error", "windows.record-orphan", root / f"{run_id}.json",
                f"record for window {idx} has no columnar windows row",
            )
            continue
        for rec_key, col_key in (
            ("jobs_loaded", "jobs_loaded"),
            ("jobs_flushed", "jobs_flushed"),
            ("boundary_time", "boundary_time"),
        ):
            if result.get(rec_key) != _pynum(row[col_key]):
                report.add(
                    "error", "windows.record-mismatch",
                    root / f"{run_id}.json",
                    f"window {idx}: record {rec_key}="
                    f"{result.get(rec_key)!r} but columnar row says "
                    f"{_pynum(row[col_key])!r}",
                )
    _check_stitched(report, root, store)


def _pynum(value):
    """numpy scalar → plain int/float for == against JSON values."""
    out = value.item()
    return out


def _check_stitched(report: FsckReport, root: Path, store) -> None:
    path = root / "stitched.json"
    if not path.is_file():
        return
    report.count("stitched")
    try:
        stitched = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        report.add("error", "stitched.parse", path, f"unreadable: {exc}")
        return
    from repro.archive.replay import stitched_summary

    recomputed = stitched_summary(store.root)
    for key, want in recomputed.items():
        got = stitched.get(key)
        if got != want:
            report.add(
                "error", "stitched.mismatch", path,
                f"{key}: stitched.json says {got!r} but the columnar "
                f"store recomputes to {want!r}",
            )


# ----------------------------------------------------------------------
# Ingested archives
# ----------------------------------------------------------------------
def fsck_archive(root: str | Path) -> FsckReport:
    """Check an ingested window archive: manifest ↔ window files ↔
    ``archive_id`` content hash."""
    from repro.archive.columnar import SPECS_DTYPE

    root = Path(root)
    report = FsckReport(root=str(root), kind="archive")
    path = root / "manifest.json"
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        report.add("error", "archive.manifest", path, f"unreadable: {exc}")
        return report
    hasher = hashlib.sha256()
    hasher.update(
        json.dumps(
            {
                "cores_per_node": manifest.get("cores_per_node"),
                "app_names": manifest.get("app_names"),
            },
            sort_keys=True,
        ).encode("utf-8")
    )
    total_jobs = 0
    for meta in manifest.get("windows", []):
        report.count("windows")
        window_path = root / str(meta["file"])
        try:
            data = window_path.read_bytes()
        except OSError as exc:
            report.add(
                "error", "archive.window-missing", window_path,
                f"unreadable: {exc}",
            )
            continue
        want = int(meta["jobs"]) * SPECS_DTYPE.itemsize
        if len(data) != want:
            report.add(
                "error", "archive.window-size", window_path,
                f"{len(data)} bytes on disk, manifest says "
                f"{meta['jobs']} records ({want} bytes)",
            )
        hasher.update(data)
        total_jobs += int(meta["jobs"])
    if total_jobs != int(manifest.get("jobs", -1)):
        report.add(
            "error", "archive.job-count", path,
            f"windows sum to {total_jobs} jobs, manifest says "
            f"{manifest.get('jobs')}",
        )
    if report.ok:
        recomputed = hasher.hexdigest()[:16]
        if recomputed != manifest.get("archive_id"):
            report.add(
                "error", "archive.id", path,
                f"archive_id recomputes to {recomputed}, manifest says "
                f"{manifest.get('archive_id')!r} — window bytes changed "
                f"after ingestion",
            )
    quarantine = root / "quarantine.json"
    if quarantine.is_file():
        try:
            json.loads(quarantine.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            report.add(
                "error", "archive.quarantine", quarantine,
                f"unreadable: {exc}",
            )
    _check_tmp_residue(report, root)
    return report
