"""Node health lifecycle bookkeeping: flaky-node blacklisting.

The cluster's nodes carry their own health state machine
(:class:`~repro.cluster.node.NodeHealth`); this tracker owns the
*policy* layered on top of it — the per-node failure history that
decides, at repair completion, whether a node returns to service or
gets drained (blacklisted), and which healthy nodes count as "suspect"
so placement can avoid them.

A node is blacklisted after ``blacklist_failures`` failures inside a
sliding ``window_s``; a healthy node with at least one failure inside
the window is *suspect* — allocatable, but ordered last by the node
selector so jobs prefer hardware with a clean recent record.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NodeHealthTracker:
    """Failure history and blacklist/suspect policy for all nodes.

    Parameters
    ----------
    blacklist_failures:
        Failures inside the window that trigger a drain; ``None``
        disables blacklisting (nodes always return after repair).
    window_s:
        Sliding-window length in simulated seconds.
    """

    blacklist_failures: int | None = None
    window_s: float = 24 * 3600.0
    #: Failure timestamps per node id (monotone within each list).
    history: dict[int, list[float]] = field(default_factory=dict)
    #: Nodes currently drained by the blacklist policy.
    drained: set[int] = field(default_factory=set)

    def record_failure(self, node_id: int, now: float) -> None:
        self.history.setdefault(node_id, []).append(now)

    def failures_in_window(self, node_id: int, now: float) -> int:
        """Failures of *node_id* within the last ``window_s`` seconds."""
        times = self.history.get(node_id)
        if not times:
            return 0
        cutoff = now - self.window_s
        return sum(1 for t in times if t >= cutoff)

    def should_drain(self, node_id: int, now: float) -> bool:
        """Blacklist decision, evaluated when a repair completes."""
        if self.blacklist_failures is None:
            return False
        return self.failures_in_window(node_id, now) >= self.blacklist_failures

    def mark_drained(self, node_id: int) -> None:
        self.drained.add(node_id)

    def suspect_nodes(self, now: float) -> frozenset[int]:
        """Healthy-but-recently-failed nodes placement should deprioritise."""
        cutoff = now - self.window_s
        return frozenset(
            node_id
            for node_id, times in self.history.items()
            if node_id not in self.drained and any(t >= cutoff for t in times)
        )

    def total_failures(self, node_id: int) -> int:
        return len(self.history.get(node_id, ()))
