"""Checkpoint/restart models: periodic and Young/Daly optimal interval.

A checkpointing job periodically writes its state; when a node failure
evicts it, it resumes from the last *completed* checkpoint instead of
restarting from scratch.  Two costs trade off:

* **Write overhead** — each checkpoint costs ``C`` wall seconds, which
  we charge as a steady throughput loss: a job checkpointing every
  ``tau`` useful-work seconds progresses at rate ``tau / (tau + C)``
  relative to a checkpoint-free run (the standard fluid approximation
  of the first-order model).
* **Rework** — on eviction, the useful work since the last completed
  checkpoint is lost: with accumulated useful progress ``p``, the job
  resumes from ``floor(p / tau) * tau``.

The optimal interval balances the two.  Young's classic first-order
result is ``tau = sqrt(2 C M)`` for per-job MTBF ``M``; Daly's
higher-order refinement (used here for ``"daly"``) is

    tau = sqrt(2 C M) * [1 + (1/3) sqrt(C / (2 M)) + C / (18 M)] - C

valid for ``M > C / 2``, degrading gracefully to ``M`` otherwise.  A
job spanning ``n`` nodes fails whenever *any* of its nodes does, so
its MTBF is the node MTBF divided by ``n``.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError
from repro.resilience.config import ResilienceConfig


def young_interval(overhead_s: float, job_mtbf_s: float) -> float:
    """Young's first-order optimal checkpoint interval ``sqrt(2CM)``."""
    if overhead_s <= 0 or job_mtbf_s <= 0:
        raise ConfigError("overhead and MTBF must be positive")
    return math.sqrt(2.0 * overhead_s * job_mtbf_s)


def daly_interval(overhead_s: float, job_mtbf_s: float) -> float:
    """Daly's higher-order optimal checkpoint interval.

    Falls back to the MTBF itself when the overhead is so large
    relative to the MTBF (``M <= C/2``) that the expansion is invalid —
    checkpointing that often would cost more than it saves.
    """
    if overhead_s <= 0 or job_mtbf_s <= 0:
        raise ConfigError("overhead and MTBF must be positive")
    if job_mtbf_s <= overhead_s / 2.0:
        return job_mtbf_s
    ratio = overhead_s / (2.0 * job_mtbf_s)
    tau = math.sqrt(2.0 * overhead_s * job_mtbf_s) * (
        1.0 + math.sqrt(ratio) / 3.0 + ratio / 9.0
    ) - overhead_s
    return max(tau, overhead_s)


def checkpoint_interval_for(
    config: ResilienceConfig, job_nodes: int
) -> float | None:
    """Resolved checkpoint interval (useful-work seconds) for a job.

    Returns ``None`` when the policy is ``"none"``; for ``"daly"``
    without an active per-node failure process there is no MTBF to
    optimise against, so the configured periodic interval is used.
    """
    if config.checkpoint == "none":
        return None
    if config.checkpoint == "periodic":
        return config.checkpoint_interval_s
    # "daly"
    if config.node_mtbf_hours is None:
        return config.checkpoint_interval_s
    job_mtbf_s = config.node_mtbf_hours * 3600.0 / max(1, job_nodes)
    if config.checkpoint_overhead_s <= 0:
        # Free checkpoints: the optimum degenerates to "continuously";
        # cap at one checkpoint per simulated minute to keep the
        # restart arithmetic sane.
        return 60.0
    return daly_interval(config.checkpoint_overhead_s, job_mtbf_s)


def checkpoint_slowdown(tau: float | None, overhead_s: float) -> float:
    """Steady-state progress-rate multiplier of a checkpointing job."""
    if tau is None or overhead_s <= 0:
        return 1.0
    return tau / (tau + overhead_s)


def saved_progress(progress: float, tau: float | None) -> float:
    """Useful work retained after an eviction.

    The last *completed* checkpoint survives: ``floor(p / tau) * tau``,
    never more than the progress itself (guards float slop).
    """
    if tau is None or tau <= 0 or progress <= 0:
        return 0.0
    return min(progress, math.floor(progress / tau) * tau)
