"""Resilience subsystem: checkpoint/restart, correlated failures,
node health lifecycle and bounded requeueing.

The layer is strictly opt-in: a :class:`ResilienceConfig` attached to
the scheduler config (or passed to
:meth:`~repro.slurm.manager.WorkloadManager.enable_resilience`)
activates it; without one the simulator's behaviour — and its outputs
— are bit-identical to a failure-free build.
"""

from repro.resilience.checkpoint import (
    checkpoint_interval_for,
    checkpoint_slowdown,
    daly_interval,
    saved_progress,
    young_interval,
)
from repro.resilience.config import CHECKPOINT_POLICIES, ResilienceConfig
from repro.resilience.correlated import eligible_rack_nodes, eligible_racks
from repro.resilience.health import NodeHealthTracker

__all__ = [
    "CHECKPOINT_POLICIES",
    "NodeHealthTracker",
    "ResilienceConfig",
    "checkpoint_interval_for",
    "checkpoint_slowdown",
    "daly_interval",
    "eligible_rack_nodes",
    "eligible_racks",
    "saved_progress",
    "young_interval",
]
