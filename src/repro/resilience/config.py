"""Declarative configuration of the resilience layer.

One frozen, JSON-round-trippable object describes everything the
workload manager needs to simulate faults: which failure processes run
(independent per-node, correlated per-rack, or both), how evicted jobs
resume (checkpoint policy), how often they may be requeued before the
scheduler gives up, and when a flaky node gets blacklisted.

The config travels inside :class:`~repro.slurm.config.SchedulerConfig`
and therefore inside campaign ``params`` dicts, so a run's failure
behaviour is part of its content hash: two campaign runs with
different resilience settings never share a cached result.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Mapping

from repro.errors import ConfigError

#: Recognised checkpoint policies (see :mod:`repro.resilience.checkpoint`).
CHECKPOINT_POLICIES = ("none", "periodic", "daly")


@dataclass(frozen=True)
class ResilienceConfig:
    """All tunables of the fault-injection and recovery machinery.

    Attributes
    ----------
    node_mtbf_hours:
        Mean time between failures of a single node (independent
        exponential process).  ``None`` disables per-node failures.
    rack_mtbf_hours:
        Mean time between whole-rack failures (switch/PDU events drawn
        over the cluster topology).  ``None`` disables the correlated
        process.
    repair_hours:
        Time a failed node spends repairing before it may return.
    checkpoint:
        ``"none"`` (evictions lose all progress), ``"periodic"``
        (checkpoint every ``checkpoint_interval_s`` of useful work) or
        ``"daly"`` (per-job Young/Daly optimal interval).
    checkpoint_interval_s:
        Useful-work seconds between checkpoints under ``"periodic"``.
    checkpoint_overhead_s:
        Wall seconds one checkpoint write costs; charged to runtime as
        a throughput loss of ``overhead / (interval + overhead)``.
    max_requeues:
        Requeue attempts granted per job before it is marked FAILED
        terminally.  ``None`` means unbounded (the legacy behaviour).
    requeue_priority_backoff:
        Priority points subtracted per accumulated requeue, so a job
        that keeps landing on failing hardware stops beating fresh
        submissions to the head of the queue.
    blacklist_failures:
        Blacklist (drain) a node after this many failures inside
        ``blacklist_window_hours``.  ``None`` disables blacklisting.
    blacklist_window_hours:
        Sliding window for the flaky-node counter; nodes with a recent
        failure inside the window are also deprioritised by placement.
    seed:
        Seed of the failure-injection RNG streams (independent of the
        workload seed).
    """

    node_mtbf_hours: float | None = None
    rack_mtbf_hours: float | None = None
    repair_hours: float = 4.0
    checkpoint: str = "none"
    checkpoint_interval_s: float = 3600.0
    checkpoint_overhead_s: float = 60.0
    max_requeues: int | None = 3
    requeue_priority_backoff: float = 0.0
    blacklist_failures: int | None = None
    blacklist_window_hours: float = 24.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.node_mtbf_hours is not None and self.node_mtbf_hours <= 0:
            raise ConfigError("node_mtbf_hours must be positive or None")
        if self.rack_mtbf_hours is not None and self.rack_mtbf_hours <= 0:
            raise ConfigError("rack_mtbf_hours must be positive or None")
        if self.repair_hours < 0:
            raise ConfigError("repair_hours must be >= 0")
        if self.checkpoint not in CHECKPOINT_POLICIES:
            raise ConfigError(
                f"checkpoint must be one of {CHECKPOINT_POLICIES}, "
                f"got {self.checkpoint!r}"
            )
        if self.checkpoint_interval_s <= 0:
            raise ConfigError("checkpoint_interval_s must be positive")
        if self.checkpoint_overhead_s < 0:
            raise ConfigError("checkpoint_overhead_s must be >= 0")
        if self.max_requeues is not None and self.max_requeues < 0:
            raise ConfigError("max_requeues must be >= 0 or None")
        if self.requeue_priority_backoff < 0:
            raise ConfigError("requeue_priority_backoff must be >= 0")
        if self.blacklist_failures is not None and self.blacklist_failures < 1:
            raise ConfigError("blacklist_failures must be >= 1 or None")
        if self.blacklist_window_hours <= 0:
            raise ConfigError("blacklist_window_hours must be positive")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def any_failures(self) -> bool:
        """Whether at least one failure process is active."""
        return self.node_mtbf_hours is not None or self.rack_mtbf_hours is not None

    @property
    def repair_seconds(self) -> float:
        return self.repair_hours * 3600.0

    def node_interarrival_seconds(self, num_nodes: int) -> float:
        """Mean seconds between per-node failures anywhere on the cluster."""
        if self.node_mtbf_hours is None:
            raise ConfigError("per-node failure process is disabled")
        if num_nodes < 1:
            raise ConfigError("num_nodes must be >= 1")
        return self.node_mtbf_hours * 3600.0 / num_nodes

    def rack_interarrival_seconds(self, num_racks: int) -> float:
        """Mean seconds between rack failures anywhere on the cluster."""
        if self.rack_mtbf_hours is None:
            raise ConfigError("rack failure process is disabled")
        if num_racks < 1:
            raise ConfigError("num_racks must be >= 1")
        return self.rack_mtbf_hours * 3600.0 / num_racks

    # ------------------------------------------------------------------
    # (De)serialisation — stable keys for campaign content hashing
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return asdict(self)

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "ResilienceConfig":
        known = {f for f in ResilienceConfig.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown resilience config keys: {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        return ResilienceConfig(**dict(data))  # type: ignore[arg-type]
