"""Correlated (rack-level) failure targeting.

The independent per-node process models component wear-out; real
clusters additionally lose whole *racks* to switch, PDU or cooling
events.  Those failures are correlated by construction: every node
behind the failed leaf switch goes down in one instant, so the blast
radius is the rack's entire resident job population — which is exactly
where node sharing's "two jobs per node" amplification bites hardest.

This module holds the pure targeting logic (which racks are eligible,
which nodes a rack event takes down); the workload manager owns the
event scheduling and eviction mechanics.
"""

from __future__ import annotations

from repro.cluster.machine import Cluster
from repro.cluster.node import Node


def eligible_rack_nodes(
    cluster: Cluster, rack: int, real_job_ids: "set[int] | None" = None
) -> list[Node]:
    """Nodes of *rack* a failure event can take down right now.

    Excludes nodes already down and nodes held by reservation phantoms
    (ids outside *real_job_ids*), mirroring the per-node process's
    candidate filter.
    """
    nodes = []
    for node_id in cluster.topology.racks.get(rack, ()):
        node = cluster.node(node_id)
        if node.down:
            continue
        if real_job_ids is not None and any(
            occ not in real_job_ids for occ in node.occupant_ids
        ):
            continue
        nodes.append(node)
    return nodes


def eligible_racks(
    cluster: Cluster, real_job_ids: "set[int] | None" = None
) -> list[int]:
    """Racks with at least one failable node, in ascending rack order.

    Ascending order keeps the RNG draw-to-target mapping deterministic
    across runs (the topology dict preserves construction order, but
    sorting makes the contract explicit).
    """
    return sorted(
        rack
        for rack in cluster.topology.racks
        if eligible_rack_nodes(cluster, rack, real_job_ids)
    )
