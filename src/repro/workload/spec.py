"""Job specifications — what a user submits plus ground truth.

A :class:`JobSpec` separates two runtimes, as trace-driven scheduler
studies must:

* ``walltime_req`` — the limit the user *requested* (``sbatch -t``);
  the only runtime information visible to the scheduler.
* ``runtime_exclusive`` — the ground-truth runtime on exclusive nodes,
  used by the simulator to evolve job progress.  Under co-allocation
  the realised runtime dilates beyond this value.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import WorkloadError


@dataclass(frozen=True)
class JobSpec:
    """One job of a workload trace.

    Attributes
    ----------
    job_id:
        Unique positive identifier within the trace.
    submit_time:
        Arrival at the batch system, seconds from trace start.
    num_nodes:
        Nodes requested (the suite's apps are node-granular, as on the
        evaluation system where nodes are the allocation unit).
    walltime_req:
        Requested walltime limit, seconds.
    runtime_exclusive:
        Ground-truth exclusive runtime, seconds.
    app:
        Application name; resolves to a resource profile.  ``""`` means
        unknown (e.g. replayed SWF without an app mapping) and is
        treated as non-shareable unless a default profile is supplied.
    shareable:
        Whether the submission permits node sharing
        (cf. ``--oversubscribe``).
    user:
        Owning user (fairshare accounting).
    partition:
        Target partition name.
    memory_mb_per_node:
        Per-node resident-set size (``sbatch --mem``).  Co-allocated
        jobs share a node's physical memory, so the scheduler may only
        pair jobs whose footprints fit together; 0 means unknown /
        unconstrained (the job is assumed to fit alongside anything).
    """

    job_id: int
    submit_time: float
    num_nodes: int
    walltime_req: float
    runtime_exclusive: float
    app: str = ""
    shareable: bool = False
    user: str = "user0"
    partition: str = "regular"
    memory_mb_per_node: float = 0.0
    #: Quality-of-service class (cf. ``sbatch --qos``); feeds the
    #: multifactor priority's QoS factor when its weight is non-zero.
    qos: str = "normal"
    #: ``afterok`` dependency (cf. ``sbatch --dependency``): the job
    #: only becomes eligible once this job id COMPLETES; if the
    #: dependency fails, the job is cancelled.  -1 = no dependency
    #: (SWF field 17 convention).
    depends_on: int = -1

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise WorkloadError(f"job_id must be non-negative, got {self.job_id}")
        if self.submit_time < 0:
            raise WorkloadError(
                f"job {self.job_id}: submit_time must be >= 0, got {self.submit_time}"
            )
        if self.num_nodes < 1:
            raise WorkloadError(
                f"job {self.job_id}: num_nodes must be >= 1, got {self.num_nodes}"
            )
        if self.walltime_req <= 0:
            raise WorkloadError(
                f"job {self.job_id}: walltime_req must be > 0, got {self.walltime_req}"
            )
        if self.runtime_exclusive <= 0:
            raise WorkloadError(
                f"job {self.job_id}: runtime_exclusive must be > 0, "
                f"got {self.runtime_exclusive}"
            )
        if self.memory_mb_per_node < 0:
            raise WorkloadError(
                f"job {self.job_id}: memory_mb_per_node must be >= 0, "
                f"got {self.memory_mb_per_node}"
            )
        if self.depends_on == self.job_id:
            raise WorkloadError(
                f"job {self.job_id} cannot depend on itself"
            )

    @property
    def node_seconds(self) -> float:
        """Exclusive-execution node-seconds this job represents."""
        return self.num_nodes * self.runtime_exclusive

    @property
    def overestimate(self) -> float:
        """User walltime over-estimation factor (>= 0)."""
        return self.walltime_req / self.runtime_exclusive

    def with_(self, **changes: object) -> "JobSpec":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)

    def __str__(self) -> str:
        share = "S" if self.shareable else "X"
        return (
            f"job{self.job_id}[{self.app or '?'} n={self.num_nodes} "
            f"r={self.runtime_exclusive:.0f}s/{self.walltime_req:.0f}s {share}]"
        )
