"""Standard Workload Format (SWF) v2 reader/writer.

SWF is the Parallel Workloads Archive interchange format: one job per
line, 18 whitespace-separated integer fields, ``;`` comment header.
This module maps between SWF records and :class:`~repro.workload.spec.
JobSpec`, so public traces can be replayed through the strategies
(experiment E12) and generated campaigns can be exported.

Field map (1-based, per the PWA definition):

==  =========================  ====================================
 1  Job Number                 job_id
 2  Submit Time                submit_time
 3  Wait Time                  ignored on read; written as -1
 4  Run Time                   runtime_exclusive
 5  Number of Allocated Procs  num_nodes * cores_per_node
 6  Average CPU Time Used      -1
 7  Used Memory                -1
 8  Requested Procs            same mapping as field 5
 9  Requested Time             walltime_req
10  Requested Memory           memory_mb_per_node (-1 when unknown)
11  Status                     1 (completed) on write
12  User ID                    user index
13  Group ID                   -1
14  Executable Number          index into the app mapping
15  Queue Number               1 + shareable flag (see note)
16  Partition Number           1
17  Preceding Job              depends_on (-1 when none)
18  Think Time                 -1
==  =========================  ====================================

SWF has no field for an oversubscription flag, so we follow the
archive's convention of overloading the *queue number*: queue 1 is the
exclusive queue, queue 2 the shareable queue.  Files written and read
by this module round-trip losslessly; foreign files simply land in the
exclusive queue.

Ingestion modes
---------------
``mode="strict"`` (default) keeps the historical fail-fast behaviour:
any malformed line aborts the whole read with
:class:`~repro.errors.TraceFormatError`.  ``mode="lenient"`` instead
*quarantines* malformed or physically impossible records — wrong field
counts, unparsable numbers, negative runtimes or submit times, procs
exceeding the target cluster, submit times running backwards,
duplicate job numbers — into a
structured :class:`~repro.diagnostics.AnomalyReport` and keeps
loading, which is what replaying foreign Parallel Workloads Archive
traces needs.  In both modes, zero-runtime records (cancelled archive
submissions) are skipped silently, as is conventional.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Sequence, TextIO

from repro.diagnostics.ingest import AnomalyReport
from repro.errors import TraceFormatError, WorkloadError
from repro.workload.spec import JobSpec
from repro.workload.trace import WorkloadTrace

_NUM_FIELDS = 18
_SHAREABLE_QUEUE = 2
_EXCLUSIVE_QUEUE = 1
_MODES = ("strict", "lenient")


def _open_for_read(source: str | Path | TextIO) -> tuple[TextIO, bool]:
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8"), True
    return source, False


class SwfParser:
    """Stateful per-line SWF record parser.

    Owns the cross-line state an SWF read needs — the last admitted
    submit time (monotonicity check) and the set of admitted job ids
    (duplicate check) — so both the whole-file :func:`read_swf` and
    the archive subsystem's chunked streaming reader
    (:mod:`repro.archive.stream`) admit and quarantine *exactly* the
    same records for the same input.  :meth:`parse_line` returns the
    admitted :class:`~repro.workload.spec.JobSpec`, or ``None`` for
    comment/blank lines and skipped or quarantined records.
    """

    def __init__(
        self,
        cores_per_node: int = 1,
        app_names: Sequence[str] = (),
        mode: str = "strict",
        max_procs: int | None = None,
        anomalies: AnomalyReport | None = None,
    ) -> None:
        if cores_per_node < 1:
            raise TraceFormatError(
                f"cores_per_node must be >= 1, got {cores_per_node}"
            )
        if mode not in _MODES:
            raise TraceFormatError(f"mode must be one of {_MODES}, got {mode!r}")
        self.cores_per_node = cores_per_node
        self.app_names = tuple(app_names)
        self.lenient = mode == "lenient"
        self.max_procs = max_procs
        self.report = anomalies if anomalies is not None else AnomalyReport()
        self.last_submit: float | None = None
        self.seen_ids: set[int] = set()
        #: Records admitted so far (across every chunk/call).
        self.admitted = 0

    def parse_line(self, line_no: int, line: str) -> JobSpec | None:
        text = line.strip()
        if not text or text.startswith(";"):
            return None
        fields = text.split()
        if len(fields) != _NUM_FIELDS:
            if self.lenient:
                self.report.add(
                    line_no, "field_count",
                    f"expected {_NUM_FIELDS} fields, got {len(fields)}",
                    text,
                )
                return None
            raise TraceFormatError(
                f"line {line_no}: expected {_NUM_FIELDS} fields, "
                f"got {len(fields)}"
            )
        try:
            values = [float(f) for f in fields]
        except ValueError as exc:
            if self.lenient:
                self.report.add(line_no, "parse", str(exc), text)
                return None
            raise TraceFormatError(f"line {line_no}: {exc}") from exc
        job_id = int(values[0])
        submit = values[1]
        runtime = values[3]
        procs = int(values[4]) if values[4] > 0 else int(values[7])
        requested_time = values[8] if values[8] > 0 else runtime
        if self.lenient:
            if submit < 0:
                self.report.add(line_no, "negative_submit",
                                f"submit time {submit:g} < 0", text)
                return None
            if runtime < 0:
                self.report.add(line_no, "negative_runtime",
                                f"runtime {runtime:g} < 0", text)
                return None
            if runtime == 0:
                return None  # cancelled archive record, skipped silently
            if procs <= 0:
                self.report.add(line_no, "nonpositive_procs",
                                f"processor count {procs} <= 0", text)
                return None
            if self.max_procs is not None and procs > self.max_procs:
                self.report.add(
                    line_no, "oversized",
                    f"{procs} procs exceed cluster capacity {self.max_procs}",
                    text,
                )
                return None
            if self.last_submit is not None and submit < self.last_submit:
                self.report.add(
                    line_no, "non_monotone_submit",
                    f"submit time {submit:g} < previous {self.last_submit:g}",
                    text,
                )
                return None
            if job_id in self.seen_ids:
                # WorkloadTrace rejects duplicate ids; quarantining
                # here keeps lenient ingestion from ever raising.
                self.report.add(line_no, "duplicate_id",
                                f"job number {job_id} already admitted", text)
                return None
        elif runtime <= 0 or procs <= 0 or submit < 0:
            return None  # cancelled or malformed archive record
        exe = int(values[13])
        app = ""
        if self.app_names and 1 <= exe <= len(self.app_names):
            app = self.app_names[exe - 1]
        queue = int(values[14])
        num_nodes = max(1, -(-procs // self.cores_per_node))
        memory = values[9] if values[9] > 0 else 0.0
        try:
            spec = JobSpec(
                job_id=job_id,
                submit_time=submit,
                num_nodes=num_nodes,
                walltime_req=max(requested_time, runtime),
                runtime_exclusive=runtime,
                app=app,
                shareable=(queue == _SHAREABLE_QUEUE),
                user=f"user{int(values[11])}" if values[11] >= 0 else "user0",
                memory_mb_per_node=memory,
                depends_on=int(values[16]) if values[16] >= 0 else -1,
            )
        except WorkloadError as exc:
            if self.lenient:
                self.report.add(line_no, "invalid_spec", str(exc), text)
                return None
            raise
        self.last_submit = submit
        self.seen_ids.add(job_id)
        self.admitted += 1
        return spec


def read_swf(
    source: str | Path | TextIO,
    cores_per_node: int = 1,
    app_names: Sequence[str] = (),
    name: str | None = None,
    max_jobs: int | None = None,
    mode: str = "strict",
    max_procs: int | None = None,
    anomalies: AnomalyReport | None = None,
) -> WorkloadTrace:
    """Parse an SWF file into a :class:`WorkloadTrace`.

    Parameters
    ----------
    cores_per_node:
        Processor counts in SWF are cores; node counts are recovered by
        ceiling division with this value.
    app_names:
        Optional mapping from executable number (1-based) to app name.
    max_jobs:
        Stop after this many parsed jobs (long archive traces).
    mode:
        ``"strict"`` aborts on the first malformed line (the historical
        behaviour); ``"lenient"`` quarantines malformed and physically
        impossible records into *anomalies* and keeps loading.
    max_procs:
        Physical processor capacity of the target cluster; lenient
        mode quarantines records requesting more (strict mode leaves
        oversized jobs to the scheduler's admission policy).
    anomalies:
        Quarantine ledger for lenient mode; a fresh
        :class:`~repro.diagnostics.AnomalyReport` is created when not
        supplied.  Ignored in strict mode.

    Jobs with zero runtime or non-positive processor counts —
    cancelled submissions in archive traces — are skipped, as is
    conventional.
    """
    parser = SwfParser(
        cores_per_node=cores_per_node,
        app_names=app_names,
        mode=mode,
        max_procs=max_procs,
        anomalies=anomalies,
    )
    stream, owned = _open_for_read(source)
    jobs: list[JobSpec] = []
    try:
        for line_no, line in enumerate(stream, start=1):
            spec = parser.parse_line(line_no, line)
            if spec is None:
                continue
            jobs.append(spec)
            if max_jobs is not None and len(jobs) >= max_jobs:
                break
    finally:
        if owned:
            stream.close()
    trace_name = name
    if trace_name is None:
        trace_name = str(source) if isinstance(source, (str, Path)) else "swf"
    return WorkloadTrace(jobs, name=trace_name)


def write_swf(
    trace: WorkloadTrace,
    target: str | Path | TextIO,
    cores_per_node: int = 1,
    app_names: Sequence[str] = (),
) -> None:
    """Write *trace* in SWF v2.

    App names present in *app_names* are encoded as executable numbers;
    unknown apps get executable number -1.  A header records the
    mapping so :func:`read_swf` round-trips.
    """
    if cores_per_node < 1:
        raise TraceFormatError(f"cores_per_node must be >= 1, got {cores_per_node}")
    app_index = {app: i + 1 for i, app in enumerate(app_names)}

    def render(stream: TextIO) -> None:
        stream.write(f"; SWF trace written by repro: {trace.name}\n")
        stream.write(f"; MaxJobs: {len(trace)}\n")
        stream.write(f"; Note: cores_per_node={cores_per_node}\n")
        for i, app in enumerate(app_names):
            stream.write(f"; App: {i + 1} {app}\n")
        stream.write(
            "; Queues: 1 exclusive, 2 shareable (oversubscribe-enabled)\n"
        )
        for job in trace:
            user_id = -1
            if job.user.startswith("user"):
                try:
                    user_id = int(job.user[4:])
                except ValueError:
                    user_id = -1
            fields = [
                job.job_id,
                int(round(job.submit_time)),
                -1,
                int(round(job.runtime_exclusive)),
                job.num_nodes * cores_per_node,
                -1,
                -1,
                job.num_nodes * cores_per_node,
                int(round(job.walltime_req)),
                int(round(job.memory_mb_per_node)) or -1,
                1,
                user_id,
                -1,
                app_index.get(job.app, -1),
                _SHAREABLE_QUEUE if job.shareable else _EXCLUSIVE_QUEUE,
                1,
                job.depends_on,
                -1,
            ]
            stream.write(" ".join(str(f) for f in fields) + "\n")

    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as stream:
            render(stream)
    else:
        render(target)


def read_swf_header_apps(source: str | Path) -> list[str]:
    """Recover the app mapping written by :func:`write_swf`."""
    apps: list[tuple[int, str]] = []
    with open(source, "r", encoding="utf-8") as stream:
        for line in stream:
            if not line.startswith(";"):
                break
            parts = line[1:].split()
            if len(parts) == 3 and parts[0] == "App:":
                try:
                    apps.append((int(parts[1]), parts[2]))
                except ValueError as exc:
                    raise TraceFormatError(f"bad app header line: {line!r}") from exc
    return [name for _, name in sorted(apps)]


def roundtrip_equal(a: WorkloadTrace, b: WorkloadTrace) -> bool:
    """True when two traces agree up to SWF's 1-second quantisation."""
    if len(a) != len(b):
        return False
    for ja, jb in zip(a, b):
        if (
            ja.job_id != jb.job_id
            or ja.num_nodes != jb.num_nodes
            or ja.app != jb.app
            or ja.shareable != jb.shareable
            or abs(ja.submit_time - jb.submit_time) > 1.0
            or abs(ja.runtime_exclusive - jb.runtime_exclusive) > 1.0
            or abs(ja.walltime_req - jb.walltime_req) > 1.0
            or abs(ja.memory_mb_per_node - jb.memory_mb_per_node) > 1.0
            or ja.depends_on != jb.depends_on
        ):
            return False
    return True


def dumps_swf(trace: WorkloadTrace, cores_per_node: int = 1,
              app_names: Sequence[str] = ()) -> str:
    """Render a trace to an SWF string (convenience for tests)."""
    buffer = io.StringIO()
    write_swf(trace, buffer, cores_per_node=cores_per_node, app_names=app_names)
    return buffer.getvalue()
