"""Workload models and trace formats (substrate S8)."""

from repro.workload.spec import JobSpec
from repro.workload.swf import read_swf, write_swf
from repro.workload.synthetic import SyntheticWorkloadGenerator
from repro.workload.trace import WorkloadTrace
from repro.workload.trinity import TrinityWorkloadGenerator

__all__ = [
    "JobSpec",
    "WorkloadTrace",
    "SyntheticWorkloadGenerator",
    "TrinityWorkloadGenerator",
    "read_swf",
    "write_swf",
]
