"""Trinity-campaign workload generation — the evaluation's workload.

Models a mixed science campaign of the eight suite mini-apps:
application drawn from a configurable mix, node count from the app's
typical sizes, problem scale lognormal around the canonical size, and
arrivals Poisson at a rate derived from a target offered load so the
system runs saturated (where scheduling strategy differences are
visible, as in the paper's evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.miniapps.base import MiniApp
from repro.miniapps.suite import TRINITY_SUITE
from repro.workload.arrivals import diurnal_arrivals, homogeneous_arrivals
from repro.workload.spec import JobSpec
from repro.workload.trace import WorkloadTrace


@dataclass
class TrinityWorkloadGenerator:
    """Campaign generator over the mini-app suite.

    Parameters
    ----------
    apps:
        The mini-apps in play (defaults to the whole suite).
    mix:
        Relative submission weights per app name; uniform if omitted.
    offered_load:
        Target demanded-over-available node-seconds ratio during the
        submission window.  Values a little above 1.0 keep a queue —
        the regime where backfill and sharing strategies differentiate.
    scale_sigma:
        Lognormal sigma of the per-submission problem-size multiplier.
    overestimate_range:
        User walltime request factor, uniform in this range.
    share_obeys_app:
        If True (default), a job's shareable flag follows its app's
        disposition; if False, :attr:`share_fraction` applies i.i.d.
    share_fraction:
        Used when ``share_obeys_app`` is False, and by sweeps.
    """

    apps: tuple[MiniApp, ...] = field(
        default_factory=lambda: tuple(TRINITY_SUITE.values())
    )
    mix: dict[str, float] | None = None
    offered_load: float = 1.2
    scale_sigma: float = 0.35
    overestimate_range: tuple[float, float] = (1.15, 1.9)
    share_obeys_app: bool = True
    share_fraction: float = 0.75
    users: int = 12
    #: Amplitude of the daily submission cycle (0 = homogeneous
    #: Poisson arrivals; up to <1 for strong day/night contrast).
    diurnal_amplitude: float = 0.0
    #: Local hour of peak submission rate (used when diurnal).
    peak_hour: float = 14.0
    #: Probability a submission depends (afterok) on the same user's
    #: previous job — campaign chains are common in real traces.
    chain_probability: float = 0.0

    def __post_init__(self) -> None:
        if not self.apps:
            raise WorkloadError("generator needs at least one mini-app")
        if self.offered_load <= 0:
            raise WorkloadError("offered_load must be positive")
        if not (0.0 <= self.diurnal_amplitude < 1.0):
            raise WorkloadError(
                f"diurnal_amplitude={self.diurnal_amplitude} outside [0, 1)"
            )
        if not (0.0 <= self.chain_probability <= 1.0):
            raise WorkloadError(
                f"chain_probability={self.chain_probability} outside [0, 1]"
            )
        names = {app.name for app in self.apps}
        if self.mix is not None:
            unknown = set(self.mix) - names
            if unknown:
                raise WorkloadError(f"mix names unknown apps: {sorted(unknown)}")
            if any(w < 0 for w in self.mix.values()):
                raise WorkloadError("mix weights must be non-negative")
            if sum(self.mix.values()) <= 0:
                raise WorkloadError("mix weights sum to zero")

    def _weights(self) -> np.ndarray:
        if self.mix is None:
            return np.full(len(self.apps), 1.0 / len(self.apps))
        raw = np.array([self.mix.get(app.name, 0.0) for app in self.apps])
        return raw / raw.sum()

    def _expected_job_node_seconds(self) -> float:
        """E[nodes * runtime] under the mix, used to set arrival rate."""
        weights = self._weights()
        total = 0.0
        for weight, app in zip(weights, self.apps):
            mean_nodes = float(np.mean(app.typical_nodes))
            # Lognormal multiplier mean = exp(sigma^2 / 2).
            scale_mean = float(np.exp(self.scale_sigma**2 / 2.0))
            runtime = app.runtime(int(round(mean_nodes))) * scale_mean
            total += weight * mean_nodes * runtime
        return total

    def generate(
        self,
        num_jobs: int,
        cluster_nodes: int,
        rng: np.random.Generator,
        start_id: int = 1,
        name: str = "trinity-campaign",
    ) -> WorkloadTrace:
        """Draw a campaign of *num_jobs* submissions for a cluster of
        *cluster_nodes* nodes at the configured offered load."""
        if num_jobs < 0:
            raise WorkloadError(f"num_jobs must be >= 0, got {num_jobs}")
        if cluster_nodes <= 0:
            raise WorkloadError(f"cluster_nodes must be positive, got {cluster_nodes}")
        weights = self._weights()
        # Arrival rate lambda so that lambda * E[node-seconds] equals
        # offered_load * cluster capacity.
        mean_demand = self._expected_job_node_seconds()
        rate = self.offered_load * cluster_nodes / mean_demand
        if self.diurnal_amplitude > 0.0:
            arrivals = diurnal_arrivals(
                num_jobs, rate, rng,
                amplitude=self.diurnal_amplitude,
                peak_hour=self.peak_hour,
            )
        else:
            arrivals = homogeneous_arrivals(num_jobs, rate, rng)

        app_indices = rng.choice(len(self.apps), size=num_jobs, p=weights)
        scales = rng.lognormal(mean=0.0, sigma=self.scale_sigma, size=num_jobs)
        lo, hi = self.overestimate_range
        overest = rng.uniform(lo, hi, size=num_jobs)
        share_draws = rng.random(num_jobs)

        jobs: list[JobSpec] = []
        last_job_of_user: dict[str, int] = {}
        for i in range(num_jobs):
            app = self.apps[int(app_indices[i])]
            nodes = int(app.typical_nodes[int(rng.integers(len(app.typical_nodes)))])
            nodes = min(nodes, cluster_nodes)
            runtime = app.runtime(nodes, work_scale=float(scales[i]))
            if self.share_obeys_app:
                shareable = app.shareable
            else:
                shareable = bool(share_draws[i] < self.share_fraction)
            # Working sets grow sublinearly with problem scale and are
            # clamped to a plausible band around the canonical size.
            memory = app.memory_mb_per_node * min(
                1.8, max(0.5, float(scales[i]))
            )
            user = f"user{int(rng.integers(self.users))}"
            depends_on = -1
            if (
                self.chain_probability > 0.0
                and user in last_job_of_user
                and rng.random() < self.chain_probability
            ):
                depends_on = last_job_of_user[user]
            job_id = start_id + i
            last_job_of_user[user] = job_id
            jobs.append(
                JobSpec(
                    job_id=job_id,
                    submit_time=float(arrivals[i]),
                    num_nodes=nodes,
                    walltime_req=runtime * float(overest[i]),
                    runtime_exclusive=runtime,
                    app=app.name,
                    shareable=shareable,
                    user=user,
                    memory_mb_per_node=memory,
                    depends_on=depends_on,
                )
            )
        return WorkloadTrace(jobs, name=name)
