"""Workload trace container."""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.workload.spec import JobSpec


class WorkloadTrace:
    """An ordered, validated collection of :class:`JobSpec` s.

    Jobs are stored sorted by (submit_time, job_id).  Job ids must be
    unique; gaps are fine (real traces have them).
    """

    def __init__(self, jobs: Iterable[JobSpec], name: str = "trace"):
        self.jobs: list[JobSpec] = sorted(
            jobs, key=lambda j: (j.submit_time, j.job_id)
        )
        self.name = name
        seen: set[int] = set()
        for job in self.jobs:
            if job.job_id in seen:
                raise WorkloadError(f"duplicate job_id {job.job_id} in trace")
            seen.add(job.job_id)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self.jobs)

    def __getitem__(self, index: int) -> JobSpec:
        return self.jobs[index]

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[JobSpec], bool]) -> "WorkloadTrace":
        return WorkloadTrace(
            (j for j in self.jobs if predicate(j)), name=f"{self.name}|filtered"
        )

    def head(self, count: int) -> "WorkloadTrace":
        return WorkloadTrace(self.jobs[:count], name=f"{self.name}|head{count}")

    def with_share_fraction(
        self, fraction: float, rng: np.random.Generator
    ) -> "WorkloadTrace":
        """A copy where each job is shareable with probability
        *fraction* — used by the sensitivity sweep (E8)."""
        if not (0.0 <= fraction <= 1.0):
            raise WorkloadError(f"share fraction {fraction} outside [0, 1]")
        draws = rng.random(len(self.jobs))
        jobs = [
            job.with_(shareable=bool(draw < fraction))
            for job, draw in zip(self.jobs, draws)
        ]
        return WorkloadTrace(jobs, name=f"{self.name}|share{fraction:.2f}")

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def total_node_seconds(self) -> float:
        return float(sum(j.node_seconds for j in self.jobs))

    @property
    def span(self) -> float:
        """Submission window length (first to last arrival)."""
        if not self.jobs:
            return 0.0
        return self.jobs[-1].submit_time - self.jobs[0].submit_time

    def offered_load(self, num_nodes: int) -> float:
        """Offered utilisation: demanded node-seconds per available
        node-second over the submission window."""
        if num_nodes <= 0:
            raise WorkloadError(f"num_nodes must be positive, got {num_nodes}")
        if self.span <= 0:
            return float("inf") if self.jobs else 0.0
        return self.total_node_seconds / (self.span * num_nodes)

    def summary(self) -> dict[str, float]:
        """Aggregate statistics for reports and sanity tests."""
        if not self.jobs:
            return {"jobs": 0}
        nodes = np.array([j.num_nodes for j in self.jobs], dtype=float)
        runtimes = np.array([j.runtime_exclusive for j in self.jobs], dtype=float)
        shareable = np.array([j.shareable for j in self.jobs], dtype=bool)
        return {
            "jobs": float(len(self.jobs)),
            "span_s": self.span,
            "total_node_seconds": self.total_node_seconds,
            "mean_nodes": float(nodes.mean()),
            "max_nodes": float(nodes.max()),
            "mean_runtime_s": float(runtimes.mean()),
            "median_runtime_s": float(np.median(runtimes)),
            "shareable_fraction": float(shareable.mean()),
        }

    def app_mix(self) -> dict[str, int]:
        """Job count per application name."""
        mix: dict[str, int] = {}
        for job in self.jobs:
            mix[job.app] = mix.get(job.app, 0) + 1
        return mix

    @staticmethod
    def concat(traces: Sequence["WorkloadTrace"], name: str = "concat") -> "WorkloadTrace":
        """Merge traces; job ids must stay globally unique."""
        jobs: list[JobSpec] = []
        for trace in traces:
            jobs.extend(trace.jobs)
        return WorkloadTrace(jobs, name=name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkloadTrace({self.name!r}, jobs={len(self.jobs)})"
