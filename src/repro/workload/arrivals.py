"""Arrival-process models.

Besides the homogeneous Poisson process, real HPC traces show strong
daily cycles (Feitelson's workload-modelling results): submissions
peak during working hours and thin out at night.  The non-homogeneous
process here modulates a base rate with a sinusoidal daily profile and
samples arrivals by thinning — the standard exact method for
non-homogeneous Poisson processes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

#: Seconds per day, the period of the diurnal cycle.
DAY = 86_400.0


def homogeneous_arrivals(
    num_jobs: int, rate: float, rng: np.random.Generator
) -> np.ndarray:
    """Arrival times of a homogeneous Poisson process."""
    if rate <= 0:
        raise WorkloadError(f"arrival rate must be positive, got {rate}")
    if num_jobs < 0:
        raise WorkloadError(f"num_jobs must be >= 0, got {num_jobs}")
    return np.cumsum(rng.exponential(1.0 / rate, size=num_jobs))


def diurnal_rate(t: np.ndarray | float, base_rate: float,
                 amplitude: float, peak_hour: float = 14.0) -> np.ndarray | float:
    """Instantaneous rate of the diurnal process at time *t* (seconds).

    ``rate(t) = base * (1 + amplitude * cos(2π (t - peak) / DAY))`` —
    maximal at *peak_hour* local time, minimal twelve hours later.
    """
    phase = 2.0 * np.pi * (np.asarray(t) - peak_hour * 3600.0) / DAY
    return base_rate * (1.0 + amplitude * np.cos(phase))


def diurnal_arrivals(
    num_jobs: int,
    base_rate: float,
    rng: np.random.Generator,
    amplitude: float = 0.6,
    peak_hour: float = 14.0,
) -> np.ndarray:
    """Arrival times of a sinusoidally-modulated Poisson process.

    Exact thinning: candidates are drawn at the maximum rate
    ``base * (1 + amplitude)`` and accepted with probability
    ``rate(t) / max_rate``.  The *mean* rate over a whole day equals
    ``base_rate``, so offered-load calibration carries over unchanged
    from the homogeneous case.
    """
    if not (0.0 <= amplitude < 1.0):
        raise WorkloadError(f"amplitude={amplitude} outside [0, 1)")
    if base_rate <= 0:
        raise WorkloadError(f"base_rate must be positive, got {base_rate}")
    if num_jobs < 0:
        raise WorkloadError(f"num_jobs must be >= 0, got {num_jobs}")
    max_rate = base_rate * (1.0 + amplitude)
    arrivals = np.empty(num_jobs, dtype=np.float64)
    t = 0.0
    accepted = 0
    while accepted < num_jobs:
        # Draw candidate gaps in blocks to amortise RNG overhead.
        block = max(64, (num_jobs - accepted) * 2)
        gaps = rng.exponential(1.0 / max_rate, size=block)
        accepts = rng.random(block)
        for gap, u in zip(gaps, accepts):
            t += gap
            rate = float(diurnal_rate(t, base_rate, amplitude, peak_hour))
            if u <= rate / max_rate:
                arrivals[accepted] = t
                accepted += 1
                if accepted == num_jobs:
                    break
    return arrivals
