"""Generic synthetic workload generation.

Distributions follow the classic workload-modelling literature
(Feitelson/Downey): Poisson arrivals, lognormal service times, job
sizes concentrated on powers of two, and multiplicative user walltime
over-estimation.  The Trinity campaign generator specialises this for
the paper's evaluation; this generic generator backs unit tests and
the SWF replay example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.workload.spec import JobSpec
from repro.workload.trace import WorkloadTrace


@dataclass
class SyntheticWorkloadGenerator:
    """Parameterised random workload source.

    Parameters
    ----------
    interarrival_mean:
        Mean of the exponential inter-arrival time (seconds).
    runtime_median / runtime_sigma:
        Lognormal service-time parameters (median in seconds, sigma of
        the underlying normal).
    node_counts / node_weights:
        Discrete job-size distribution.
    overestimate_range:
        Users request ``runtime * U(lo, hi)`` walltime.
    shareable_fraction:
        Probability a job opts into node sharing.
    max_walltime:
        Cap applied to both runtime and request (partition limit).
    users:
        Number of distinct users cycled through submissions.
    """

    interarrival_mean: float = 120.0
    runtime_median: float = 1800.0
    runtime_sigma: float = 1.0
    node_counts: tuple[int, ...] = (1, 2, 4, 8, 16)
    node_weights: tuple[float, ...] = (0.30, 0.25, 0.20, 0.15, 0.10)
    overestimate_range: tuple[float, float] = (1.1, 2.0)
    shareable_fraction: float = 0.5
    max_walltime: float = 86_400.0
    users: int = 8
    apps: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.interarrival_mean <= 0:
            raise WorkloadError("interarrival_mean must be positive")
        if len(self.node_counts) != len(self.node_weights):
            raise WorkloadError("node_counts and node_weights lengths differ")
        if abs(sum(self.node_weights) - 1.0) > 1e-9:
            raise WorkloadError(
                f"node_weights must sum to 1, got {sum(self.node_weights)}"
            )
        lo, hi = self.overestimate_range
        if not (1.0 <= lo <= hi):
            raise WorkloadError(f"bad overestimate_range {self.overestimate_range}")

    def generate(
        self,
        num_jobs: int,
        rng: np.random.Generator,
        start_id: int = 1,
        name: str = "synthetic",
    ) -> WorkloadTrace:
        """Draw *num_jobs* jobs."""
        if num_jobs < 0:
            raise WorkloadError(f"num_jobs must be >= 0, got {num_jobs}")
        arrivals = np.cumsum(rng.exponential(self.interarrival_mean, size=num_jobs))
        sizes = rng.choice(self.node_counts, size=num_jobs, p=self.node_weights)
        runtimes = rng.lognormal(
            mean=np.log(self.runtime_median), sigma=self.runtime_sigma, size=num_jobs
        )
        runtimes = np.clip(runtimes, 30.0, self.max_walltime)
        lo, hi = self.overestimate_range
        overest = rng.uniform(lo, hi, size=num_jobs)
        share = rng.random(num_jobs) < self.shareable_fraction
        jobs = []
        for i in range(num_jobs):
            app = ""
            if self.apps:
                app = str(self.apps[int(rng.integers(len(self.apps)))])
            walltime = min(float(runtimes[i] * overest[i]), self.max_walltime)
            jobs.append(
                JobSpec(
                    job_id=start_id + i,
                    submit_time=float(arrivals[i]),
                    num_nodes=int(sizes[i]),
                    walltime_req=walltime,
                    runtime_exclusive=float(runtimes[i]),
                    app=app,
                    shareable=bool(share[i]),
                    user=f"user{int(rng.integers(self.users))}",
                )
            )
        return WorkloadTrace(jobs, name=name)
