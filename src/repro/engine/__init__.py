"""Discrete-event simulation engine (substrate S1).

The engine is deliberately generic: it knows nothing about jobs, nodes
or schedulers.  Higher layers (:mod:`repro.slurm`) register handlers for
event kinds and drive the simulation through :class:`Simulator`.
"""

from repro.engine.events import Event, EventKind
from repro.engine.heap import EventHeap
from repro.engine.rng import RngStreams
from repro.engine.simulator import Simulator
from repro.engine.trace import EventTrace, TraceRecord

__all__ = [
    "Event",
    "EventKind",
    "EventHeap",
    "RngStreams",
    "Simulator",
    "EventTrace",
    "TraceRecord",
]
