"""A binary event heap with lazy deletion.

Wraps :mod:`heapq` with the engine's ordering rules and transparently
skips cancelled events.  The heap assigns the global ``seq`` counter so
events inserted earlier win ties — deterministic, reproducible runs.
"""

from __future__ import annotations

import heapq
from typing import Iterator

from repro.engine.events import Event
from repro.errors import SimulationError


class EventHeap:
    """Priority queue of :class:`~repro.engine.events.Event` objects."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> Event:
        """Queue *event*, assigning its insertion sequence number."""
        if event.seq != -1:
            raise SimulationError(
                f"event {event!r} was already pushed; events are single-use"
            )
        event.seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap, (event.time, int(event.kind), event.seq, event))
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Lazily remove *event*; it will be skipped when popped.

        Cancelling an event that was already dispatched (or already
        cancelled) is a no-op, so cleanup code need not track whether
        the event it holds has fired.
        """
        if not event.cancelled and not event.dispatched:
            event.cancel()
            self._live -= 1

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises
        ------
        SimulationError
            If the heap holds no live events.
        """
        while self._heap:
            _, _, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            event.dispatched = True
            return event
        raise SimulationError("pop() from an empty event heap")

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or ``None`` if empty."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    def drain(self) -> Iterator[Event]:
        """Yield and remove all remaining live events in order."""
        while self:
            yield self.pop()

    def clear(self) -> None:
        """Drop every queued event (used when resetting a simulator)."""
        self._heap.clear()
        self._live = 0
