"""Event objects for the discrete-event engine.

Events are ordered by ``(time, priority, seq)``.  ``seq`` is a global
monotone counter assigned by the heap, which gives deterministic FIFO
ordering among simultaneous events.  ``priority`` lets the workload
manager order same-timestamp events semantically (e.g. process job
completions before scheduler passes so freed nodes are visible).

Cancellation is O(1): callers keep a reference to the event and set
:attr:`Event.cancelled`; the heap skips cancelled entries on pop.  This
is the standard lazy-deletion idiom and avoids O(n) heap surgery, which
matters because every co-runner arrival/departure reschedules finish
events.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class EventKind(enum.IntEnum):
    """Kinds of events understood by the workload-manager layer.

    The integer values double as same-timestamp tie-break priorities:
    lower values are processed first.  Finishing jobs before starting
    new ones (and both before a scheduler pass) reproduces the order in
    which a real batch system observes state changes.
    """

    JOB_FINISH = 0
    JOB_TIMEOUT = 1
    JOB_CANCEL = 2
    #: Hardware events: a node failing evicts its occupants before any
    #: same-instant submission or scheduling decision sees the node,
    #: and a repair returns capacity before the next pass runs.
    NODE_FAIL = 3
    NODE_REPAIR = 4
    #: Reservation edges and other state checkpoints apply before new
    #: submissions and scheduling decisions at the same instant.
    CHECKPOINT = 5
    JOB_SUBMIT = 6
    SCHEDULER_PASS = 7
    BACKFILL_PASS = 8
    SIM_END = 9


@dataclass(eq=False)
class Event:
    """A scheduled occurrence in simulated time.

    Parameters
    ----------
    time:
        Simulated timestamp (seconds) at which the event fires.
    kind:
        The :class:`EventKind` dispatched to the registered handler.
    payload:
        Opaque object forwarded to the handler (typically a job).
    """

    time: float
    kind: EventKind
    payload: Any = None
    cancelled: bool = field(default=False, compare=False)
    seq: int = field(default=-1, compare=False)
    #: Set by the heap when the event is popped for dispatch; a
    #: dispatched event can no longer be cancelled (cancelling it is a
    #: harmless no-op, so handlers may clean up unconditionally).
    dispatched: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; the heap will skip it on pop."""
        self.cancelled = True

    @property
    def sort_key(self) -> tuple[float, int, int]:
        """Ordering key: time, then kind priority, then insertion order."""
        return (self.time, int(self.kind), self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.3f}, {self.kind.name}{state}, seq={self.seq})"
