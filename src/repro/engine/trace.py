"""Event-trace recording for debugging and validation.

The trace stores lightweight immutable records (not the live event
objects) so retaining a trace never pins simulator state, and tests can
assert on the exact dispatch order of a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.engine.events import Event, EventKind


@dataclass(frozen=True)
class TraceRecord:
    """One dispatched event, as recorded."""

    time: float
    kind: EventKind
    seq: int
    label: str

    def __str__(self) -> str:
        return f"[{self.time:12.3f}] {self.kind.name:<14} {self.label}"


def _default_label(event: Event) -> str:
    payload = event.payload
    if payload is None:
        return ""
    # Jobs and most payloads expose a short identifier.
    for attr in ("job_id", "name", "id"):
        value = getattr(payload, attr, None)
        if value is not None:
            return str(value)
    return type(payload).__name__


class EventTrace:
    """Append-only record of dispatched events.

    Parameters
    ----------
    keep:
        Optional predicate on :class:`~repro.engine.events.Event`; only
        matching events are recorded (e.g. drop high-frequency
        scheduler passes from long runs).
    limit:
        Maximum records retained; the oldest are discarded first so the
        tail of a long run is always available.
    """

    def __init__(
        self,
        keep: Callable[[Event], bool] | None = None,
        limit: int = 1_000_000,
    ) -> None:
        self._keep = keep
        self._limit = int(limit)
        self._records: list[TraceRecord] = []
        self.dropped = 0

    def record(self, event: Event) -> None:
        """Record *event* if the filter admits it."""
        if self._keep is not None and not self._keep(event):
            return
        self._records.append(
            TraceRecord(
                time=event.time,
                kind=event.kind,
                seq=event.seq,
                label=_default_label(event),
            )
        )
        if len(self._records) > self._limit:
            overflow = len(self._records) - self._limit
            del self._records[:overflow]
            self.dropped += overflow

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    def of_kind(self, kind: EventKind) -> list[TraceRecord]:
        """All records of one event kind, in dispatch order."""
        return [r for r in self._records if r.kind == kind]

    def format(self, last: int | None = None) -> str:
        """Human-readable dump of the (tail of the) trace."""
        records = self._records if last is None else self._records[-last:]
        return "\n".join(str(r) for r in records)
