"""The discrete-event simulation loop.

:class:`Simulator` owns the clock and the event heap and dispatches
events to handlers registered per :class:`~repro.engine.events.EventKind`.
It is intentionally minimal — all batch-system semantics live in
:mod:`repro.slurm.manager`, which is just another handler client.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.engine.events import Event, EventKind
from repro.engine.heap import EventHeap
from repro.engine.trace import EventTrace
from repro.errors import SimulationError

Handler = Callable[["Simulator", Event], None]


class Simulator:
    """Single-threaded discrete-event simulator.

    Parameters
    ----------
    trace:
        Optional :class:`~repro.engine.trace.EventTrace` that records
        every dispatched event for post-mortem inspection.
    max_events:
        Safety valve: raise :class:`~repro.errors.SimulationError` after
        this many dispatches (guards against livelock in faulty
        strategies).
    """

    def __init__(self, trace: EventTrace | None = None, max_events: int = 50_000_000):
        self.now: float = 0.0
        self.heap = EventHeap()
        self.trace = trace
        self.max_events = int(max_events)
        self.events_dispatched = 0
        self._handlers: dict[EventKind, list[Handler]] = {}
        self._running = False
        self._stop_requested = False

    # ------------------------------------------------------------------
    # Registration and scheduling
    # ------------------------------------------------------------------
    def on(self, kind: EventKind, handler: Handler) -> None:
        """Register *handler* for events of *kind* (append order kept)."""
        self._handlers.setdefault(kind, []).append(handler)

    def schedule(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Queue a new event at absolute simulated *time*.

        Scheduling in the past is an error: it indicates a bookkeeping
        bug (e.g. a stale remaining-work update), never a valid policy.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule {kind.name} at t={time:.6f} < now={self.now:.6f}"
            )
        return self.heap.push(Event(time=time, kind=kind, payload=payload))

    def schedule_in(self, delay: float, kind: EventKind, payload: Any = None) -> Event:
        """Queue a new event *delay* seconds from now."""
        return self.schedule(self.now + delay, kind, payload)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy deletion)."""
        self.heap.cancel(event)

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def step(self) -> Event:
        """Dispatch exactly one event and return it."""
        event = self.heap.pop()
        if event.time < self.now:
            raise SimulationError(
                f"time moved backwards: {event!r} while now={self.now:.6f}"
            )
        self.now = event.time
        self.events_dispatched += 1
        if self.events_dispatched > self.max_events:
            raise SimulationError(
                f"exceeded max_events={self.max_events}; likely a scheduling livelock"
            )
        if self.trace is not None:
            self.trace.record(event)
        for handler in self._handlers.get(event.kind, ()):
            handler(self, event)
        return event

    def run(self, until: float | None = None) -> float:
        """Run until the heap drains, *until* is reached, or stop().

        Returns the simulation time at which the loop ended.
        """
        if self._running:
            raise SimulationError("run() re-entered; the simulator is not reentrant")
        self._running = True
        self._stop_requested = False
        try:
            while self.heap:
                next_time = self.heap.peek_time()
                if until is not None and next_time is not None and next_time > until:
                    self.now = until
                    break
                self.step()
                if self._stop_requested:
                    break
            else:
                if until is not None and self.now < until:
                    self.now = until
        finally:
            self._running = False
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now:.3f}, queued={len(self.heap)}, "
            f"dispatched={self.events_dispatched})"
        )
