"""The discrete-event simulation loop.

:class:`Simulator` owns the clock and the event heap and dispatches
events to handlers registered per :class:`~repro.engine.events.EventKind`.
It is intentionally minimal — all batch-system semantics live in
:mod:`repro.slurm.manager`, which is just another handler client.

Diagnostics hooks (all inert unless armed):

* an optional flight ``recorder`` receives every dispatched event
  (one bounded-deque append), so crashes carry the recent history;
* a wall-clock watchdog bounds the real time one :meth:`run` call may
  consume before raising :class:`~repro.errors.WatchdogError`;
* a simulated-time progress guard bounds how many events may dispatch
  at a single timestamp, catching zero-delay livelocks long before the
  lifetime ``max_events`` backstop would.

Preemption hooks (see :mod:`repro.snapshot`, both inert unless armed):

* a *suspend poll* checked before every dispatch raises
  :class:`~repro.errors.SuspendRequested` at a clean event boundary,
  so SIGTERM/SIGINT can suspend a run without corrupting state;
* an *auto-snapshotter* invoked after every dispatch periodically
  serialises the complete simulation state to disk.

Both hooks — and the transient run-loop fields — are excluded from
pickling, so a :meth:`snapshot` taken mid-run restores to a clean,
re-runnable simulator.
"""

from __future__ import annotations

import pickle
import time as _wallclock
from typing import TYPE_CHECKING, Any, Callable

from repro.engine.events import Event, EventKind
from repro.engine.heap import EventHeap
from repro.engine.trace import EventTrace
from repro.errors import (
    MaxEventsError,
    SimulationError,
    SuspendRequested,
    WatchdogError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.diagnostics.recorder import FlightRecorder
    from repro.observability.profiler import HotLoopProfiler
    from repro.snapshot.auto import AutoSnapshotter

Handler = Callable[["Simulator", Event], None]

#: Default lifetime dispatch budget (livelock backstop).
DEFAULT_MAX_EVENTS = 50_000_000


class Simulator:
    """Single-threaded discrete-event simulator.

    Parameters
    ----------
    trace:
        Optional :class:`~repro.engine.trace.EventTrace` that records
        every dispatched event for post-mortem inspection.
    max_events:
        Safety valve: raise :class:`~repro.errors.MaxEventsError` after
        this many dispatches (guards against livelock in faulty
        strategies).
    recorder:
        Optional :class:`~repro.diagnostics.FlightRecorder` fed every
        dispatched event for crash reports.
    wall_clock_limit_s:
        Real-time budget for one :meth:`run` call; ``None`` disables
        the wall-clock watchdog.
    stall_event_limit:
        Maximum dispatches at one simulated timestamp before the
        progress guard fires; ``None`` disables it.
    profiler:
        Optional :class:`~repro.observability.HotLoopProfiler` fed the
        wall-clock cost of every handler dispatch, keyed by event
        kind.  Inert when ``None`` (the default): the hot path then
        pays one ``is not None`` test per event.
    """

    def __init__(
        self,
        trace: EventTrace | None = None,
        max_events: int = DEFAULT_MAX_EVENTS,
        recorder: "FlightRecorder | None" = None,
        wall_clock_limit_s: float | None = None,
        stall_event_limit: int | None = None,
        profiler: "HotLoopProfiler | None" = None,
    ):
        self.now: float = 0.0
        self.heap = EventHeap()
        self.trace = trace
        self.max_events = int(max_events)
        self.recorder = recorder
        self.wall_clock_limit_s = wall_clock_limit_s
        self.stall_event_limit = stall_event_limit
        self.profiler = profiler
        self.events_dispatched = 0
        self._handlers: dict[EventKind, list[Handler]] = {}
        self._running = False
        self._stop_requested = False
        self._wall_deadline: float | None = None
        self._stall_anchor: float = -1.0
        self._stall_count = 0
        self._suspend_poll: Callable[[], bool] | None = None
        self._autosnap: "AutoSnapshotter | None" = None

    # ------------------------------------------------------------------
    # Registration and scheduling
    # ------------------------------------------------------------------
    def on(self, kind: EventKind, handler: Handler) -> None:
        """Register *handler* for events of *kind* (append order kept)."""
        self._handlers.setdefault(kind, []).append(handler)

    def schedule(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Queue a new event at absolute simulated *time*.

        Scheduling in the past is an error: it indicates a bookkeeping
        bug (e.g. a stale remaining-work update), never a valid policy.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule {kind.name} at t={time:.6f} < now={self.now:.6f}"
            )
        return self.heap.push(Event(time=time, kind=kind, payload=payload))

    def schedule_in(self, delay: float, kind: EventKind, payload: Any = None) -> Event:
        """Queue a new event *delay* seconds from now."""
        return self.schedule(self.now + delay, kind, payload)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy deletion)."""
        self.heap.cancel(event)

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Preemption hooks and snapshotting
    # ------------------------------------------------------------------
    def set_suspend_poll(self, poll: Callable[[], bool] | None) -> None:
        """Arm (or disarm with ``None``) the cooperative suspend poll.

        The poll is evaluated before each dispatch; returning True
        raises :class:`~repro.errors.SuspendRequested` with the queue
        intact, so a snapshot taken at that moment resumes exactly
        where the run left off.
        """
        self._suspend_poll = poll

    def set_autosnapshotter(self, snapshotter: "AutoSnapshotter | None") -> None:
        """Arm (or disarm) the periodic state snapshotter."""
        self._autosnap = snapshotter

    def snapshot(self) -> bytes:
        """Serialise the full event-loop world — heap, clock, counters
        and every registered handler's object graph — to bytes.

        Because handlers are bound methods, the owning manager (jobs,
        cluster, queue, accounting, collectors, RNG streams) travels
        with the simulator; :meth:`restore` brings the whole world
        back with object identities preserved.
        """
        return pickle.dumps(self, protocol=4)

    @classmethod
    def restore(cls, blob: bytes) -> "Simulator":
        """Rebuild a simulator from :meth:`snapshot` output."""
        sim = pickle.loads(blob)
        if not isinstance(sim, cls):
            raise SimulationError(
                f"snapshot does not contain a {cls.__name__} "
                f"(got {type(sim).__name__})"
            )
        return sim

    def __getstate__(self) -> dict:
        """Pickle without the transient run-loop/hook state, so a
        snapshot taken *inside* :meth:`run` restores re-runnable."""
        state = self.__dict__.copy()
        state["_running"] = False
        state["_stop_requested"] = False
        state["_wall_deadline"] = None
        state["_suspend_poll"] = None
        state["_autosnap"] = None
        return state

    # ------------------------------------------------------------------
    # Watchdogs
    # ------------------------------------------------------------------
    def _check_progress_guard(self) -> None:
        """Simulated-time progress guard (called with ``now`` updated)."""
        if self.now != self._stall_anchor:
            self._stall_anchor = self.now
            self._stall_count = 1
            return
        self._stall_count += 1
        if self._stall_count > self.stall_event_limit:  # type: ignore[operator]
            raise WatchdogError(
                f"progress watchdog: {self._stall_count} events dispatched "
                f"at t={self.now:.6f} without the clock advancing "
                f"(stall_event_limit={self.stall_event_limit}); "
                f"likely a zero-delay event loop",
                kind="sim_progress",
                sim_time=self.now,
                events_dispatched=self.events_dispatched,
            )

    def _check_wall_clock(self) -> None:
        """Wall-clock watchdog (called from the run loop when armed)."""
        if _wallclock.perf_counter() >= self._wall_deadline:  # type: ignore[operator]
            raise WatchdogError(
                f"wall-clock watchdog: run() exceeded "
                f"{self.wall_clock_limit_s:.3f}s after "
                f"{self.events_dispatched} events at t={self.now:.6f}",
                kind="wall_clock",
                sim_time=self.now,
                events_dispatched=self.events_dispatched,
            )

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def step(self) -> Event:
        """Dispatch exactly one event and return it."""
        event = self.heap.pop()
        if event.time < self.now:
            raise SimulationError(
                f"time moved backwards: {event!r} while now={self.now:.6f}"
            )
        self.now = event.time
        self.events_dispatched += 1
        if self.events_dispatched > self.max_events:
            raise MaxEventsError(
                f"exceeded max_events={self.max_events} at t={self.now:.6f} "
                f"({self.events_dispatched} dispatched, "
                f"{len(self.heap)} queued); likely a scheduling livelock",
                sim_time=self.now,
                events_dispatched=self.events_dispatched,
                max_events=self.max_events,
                flight_tail=(
                    self.recorder.tail(32) if self.recorder is not None else None
                ),
            )
        if self.stall_event_limit is not None:
            self._check_progress_guard()
        if self.trace is not None:
            self.trace.record(event)
        if self.recorder is not None:
            self.recorder.record(event)
        if self.profiler is None:
            for handler in self._handlers.get(event.kind, ()):
                handler(self, event)
        else:
            started_ns = _wallclock.perf_counter_ns()
            for handler in self._handlers.get(event.kind, ()):
                handler(self, event)
            self.profiler.record_event(
                event.kind.name,
                _wallclock.perf_counter_ns() - started_ns,
            )
        return event

    def run(self, until: float | None = None) -> float:
        """Run until the heap drains, *until* is reached, or stop().

        Returns the simulation time at which the loop ended.
        """
        if self._running:
            raise SimulationError("run() re-entered; the simulator is not reentrant")
        self._running = True
        self._stop_requested = False
        if self.wall_clock_limit_s is not None:
            self._wall_deadline = (
                _wallclock.perf_counter() + self.wall_clock_limit_s
            )
        try:
            while self.heap:
                if self._suspend_poll is not None and self._suspend_poll():
                    raise SuspendRequested(
                        f"suspend requested at t={self.now:.6f} after "
                        f"{self.events_dispatched} events",
                        sim_time=self.now,
                        events_dispatched=self.events_dispatched,
                    )
                if self._wall_deadline is not None:
                    self._check_wall_clock()
                next_time = self.heap.peek_time()
                if until is not None and next_time is not None and next_time > until:
                    self.now = until
                    break
                self.step()
                if self._autosnap is not None:
                    self._autosnap.maybe_fire(self)
                if self._stop_requested:
                    break
            else:
                if until is not None and self.now < until:
                    self.now = until
        finally:
            self._running = False
            self._wall_deadline = None
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now:.3f}, queued={len(self.heap)}, "
            f"dispatched={self.events_dispatched})"
        )
