"""Deterministic random-number streams.

Every stochastic component of the simulator (arrival process, runtime
noise, workload mix, ...) draws from its *own* named stream, all spawned
from one root seed.  Adding a consumer therefore never perturbs the
draws seen by existing consumers — a property the reproduction relies on
when comparing strategies on the *same* generated trace.
"""

from __future__ import annotations

import numpy as np


class RngStreams:
    """A family of independent, named :class:`numpy.random.Generator` s.

    Examples
    --------
    >>> streams = RngStreams(seed=42)
    >>> arrivals = streams.get("arrivals")
    >>> runtimes = streams.get("runtimes")
    >>> float(arrivals.random()) != float(runtimes.random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it on first use.

        The stream is derived from the root seed and a stable hash of
        the name, so ``RngStreams(s).get(n)`` is reproducible across
        processes and insertion orders.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed from the root entropy plus the name's
            # bytes: stable across runs, independent across names.
            name_key = [b for b in name.encode("utf-8")]
            child = np.random.SeedSequence(
                entropy=self._root.entropy, spawn_key=tuple(name_key)
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def reset(self) -> None:
        """Forget all streams; the next :meth:`get` re-derives them."""
        self._streams.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(seed={self.seed}, streams={sorted(self._streams)})"
