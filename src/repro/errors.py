"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class AllocationError(ReproError):
    """An allocation request violates cluster occupancy invariants."""


class SchedulingError(ReproError):
    """A scheduling strategy produced an inconsistent decision."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class WorkloadError(ReproError):
    """A workload trace or job specification is invalid."""


class TraceFormatError(WorkloadError):
    """A Standard Workload Format (SWF) file could not be parsed."""


class JobStateError(ReproError):
    """A job-lifecycle transition was attempted from an illegal state."""


class CampaignError(ReproError):
    """A campaign execution finished with failed runs."""
