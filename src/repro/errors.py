"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class AllocationError(ReproError):
    """An allocation request violates cluster occupancy invariants."""


class SchedulingError(ReproError):
    """A scheduling strategy produced an inconsistent decision."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class MaxEventsError(SimulationError):
    """The engine's ``max_events`` backstop fired (likely a livelock).

    Carries the simulated time, the dispatch counters and — when a
    flight recorder was installed — the tail of recently dispatched
    events, so a livelock is debuggable from the exception alone.
    Only ``message`` participates in ``args`` so instances survive
    pickling across campaign worker processes.
    """

    def __init__(
        self,
        message: str,
        *,
        sim_time: float | None = None,
        events_dispatched: int | None = None,
        max_events: int | None = None,
        flight_tail: "list[dict] | None" = None,
    ) -> None:
        super().__init__(message)
        self.sim_time = sim_time
        self.events_dispatched = events_dispatched
        self.max_events = max_events
        self.flight_tail = flight_tail or []


class WatchdogError(SimulationError):
    """A watchdog tripped: the run stalled in wall-clock or simulated
    time (see :mod:`repro.diagnostics`).

    ``kind`` is ``"wall_clock"`` (the run loop exceeded its real-time
    budget) or ``"sim_progress"`` (too many events dispatched without
    the simulated clock advancing).
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str = "",
        sim_time: float | None = None,
        events_dispatched: int | None = None,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.sim_time = sim_time
        self.events_dispatched = events_dispatched


class SnapshotError(ReproError):
    """A simulator state snapshot is missing, stale, or corrupt.

    ``reason`` categorises the failure (``"format"``, ``"version"``,
    ``"checksum"``, ``"spec_hash"``, ``"unreadable"``) so callers can
    distinguish "start fresh" situations (a stale or truncated file)
    from programming errors.
    """

    def __init__(self, message: str, *, reason: str = "") -> None:
        super().__init__(message)
        self.reason = reason


class SuspendRequested(BaseException):
    """Cooperative preemption: the run was asked to suspend.

    Raised by the engine's run loop at an event boundary when a
    suspend poll (armed by the campaign layer on SIGTERM/SIGINT or by
    a resource guard) reports a pending request.  Deliberately *not* a
    :class:`ReproError` — and not even an :class:`Exception` — so the
    generic retry, crash-bundle, and quarantine handlers cannot
    mistake a suspension for a failure.

    ``snapshot_path`` is filled in by the worker entry once the
    pre-suspension state snapshot has been written; attributes survive
    pickling across ``ProcessPoolExecutor`` because
    ``BaseException.__reduce__`` preserves ``__dict__``.
    """

    def __init__(
        self,
        message: str,
        *,
        sim_time: float | None = None,
        events_dispatched: int | None = None,
        snapshot_path: str | None = None,
    ) -> None:
        super().__init__(message)
        self.sim_time = sim_time
        self.events_dispatched = events_dispatched
        self.snapshot_path = snapshot_path


class WorkloadError(ReproError):
    """A workload trace or job specification is invalid."""


class TraceFormatError(WorkloadError):
    """A Standard Workload Format (SWF) file could not be parsed."""


class JobStateError(ReproError):
    """A job-lifecycle transition was attempted from an illegal state."""


class CampaignError(ReproError):
    """A campaign execution finished with failed runs."""


class ReplayError(ReproError):
    """A crash replay bundle is missing, malformed, or unreadable."""
