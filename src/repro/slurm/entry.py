"""Picklable per-run entry point for campaign workers.

:func:`execute_run` turns one campaign ``params`` dict (see
:mod:`repro.campaign.spec`) into a plain JSON-serialisable result
dict.  It is a module-level function so :class:`concurrent.futures.
ProcessPoolExecutor` can ship it to worker processes, and it is the
*single* execution path for both the serial and parallel campaign
modes — which is what makes their results bit-identical.

The returned payload is deterministic for fixed params: anything
wall-clock-dependent is stripped before returning, so result files
can be compared across serial/parallel executions and across hosts.

Preemption support (armed only when the campaign runner passes a
``snapshot_dir``): the worker installs SIGTERM/SIGINT handlers, polls
the suspension flag at every event boundary, periodically snapshots
the full simulator state, and — on suspension — writes a final
snapshot before raising :class:`~repro.errors.SuspendRequested` back
to the pool.  A later execution of the same run id restores from the
snapshot and continues; determinism makes the resumed payload
byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.errors import ConfigError, ReproError, SnapshotError, SuspendRequested
from repro.slurm.config import SchedulerConfig
from repro.workload.trace import WorkloadTrace


def _jsonable(value: object) -> object:
    """Coerce numpy scalars/arrays (and containers of them) to plain
    Python so result payloads serialise with the stdlib json module."""
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, float) and math.isinf(value):
        return value  # json emits Infinity; fine for our own readers
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def _build_trace(workload: Mapping[str, object]) -> WorkloadTrace:
    kind = workload.get("kind")
    if kind == "trinity":
        from repro.workload.trinity import TrinityWorkloadGenerator

        kwargs: dict[str, object] = {
            "share_obeys_app": bool(workload.get("share_obeys_app", False)),
            "share_fraction": float(workload["share_fraction"]),  # type: ignore[arg-type]
            "offered_load": float(workload["offered_load"]),  # type: ignore[arg-type]
        }
        if "overestimate_range" in workload:
            lo, hi = workload["overestimate_range"]  # type: ignore[misc]
            kwargs["overestimate_range"] = (float(lo), float(hi))
        if "diurnal_amplitude" in workload:
            kwargs["diurnal_amplitude"] = float(workload["diurnal_amplitude"])  # type: ignore[arg-type]
        generator = TrinityWorkloadGenerator(**kwargs)  # type: ignore[arg-type]
        rng = np.random.default_rng(int(workload["seed"]))  # type: ignore[arg-type]
        return generator.generate(
            int(workload["jobs"]),  # type: ignore[arg-type]
            int(workload["nodes"]),  # type: ignore[arg-type]
            rng,
            name=str(workload.get("name", "campaign")),
        )
    if kind == "inline":
        from repro.campaign.spec import trace_from_inline

        return trace_from_inline(workload)
    if kind == "swf":
        from repro.workload.swf import read_swf, read_swf_header_apps

        path = str(workload["path"])
        apps = read_swf_header_apps(path)
        max_procs = workload.get("max_procs")
        return read_swf(
            path,
            cores_per_node=int(workload.get("cores_per_node", 32)),  # type: ignore[arg-type]
            app_names=apps,
            mode=str(workload.get("mode", "strict")),
            max_procs=int(max_procs) if max_procs is not None else None,  # type: ignore[arg-type]
        )
    raise ConfigError(f"unknown workload kind {kind!r}")


def _execute_simulate(
    params: Mapping[str, object],
    snapshot_dir: str | None = None,
    snapshot_every: str | None = None,
    telemetry_dir: str | None = None,
) -> dict[str, object]:
    from repro.metrics.summary import summarize
    from repro.slurm.manager import build_manager

    strategy = str(params["strategy"])
    num_nodes = int(params["num_nodes"])  # type: ignore[arg-type]
    config_kwargs = dict(params.get("config", {}))  # type: ignore[arg-type]
    config = SchedulerConfig(strategy=strategy, **config_kwargs)

    run_id: str | None = None
    if snapshot_dir is not None or telemetry_dir is not None:
        from repro.campaign.spec import run_id_of

        run_id = run_id_of(dict(params))
    if telemetry_dir is not None:
        # Out-of-band arming: telemetry is NOT part of the content-
        # hashed params (run ids and result payloads are identical
        # with or without it — the byte-identity contract).
        from repro.observability.config import TelemetryConfig

        config.telemetry = TelemetryConfig(
            enabled=True,
            decisions=True,
            profile=True,
            decisions_path=str(
                Path(telemetry_dir) / f"{run_id}.decisions.jsonl"
            ),
        )

    snap_path: Path | None = None
    manager = None
    if snapshot_dir is not None:
        from repro.snapshot.state import read_snapshot, snapshot_path_for

        snap_path = snapshot_path_for(snapshot_dir, run_id)
        if snap_path.is_file():
            try:
                manager = read_snapshot(snap_path, expect_spec_hash=run_id)
            except SnapshotError:
                manager = None  # stale or corrupt: start fresh
    if manager is None:
        trace = _build_trace(params["workload"])  # type: ignore[arg-type]
        manager = build_manager(
            trace, num_nodes=num_nodes, strategy=strategy, config=config
        )
    if snap_path is not None:
        from repro.snapshot import suspend
        from repro.snapshot.auto import AutoSnapshotter, parse_snapshot_every

        manager.sim.set_suspend_poll(suspend.suspend_requested)
        every_events, every_wall_s = parse_snapshot_every(snapshot_every)
        if every_events is not None or every_wall_s is not None:
            AutoSnapshotter(
                manager,
                snap_path,
                spec_hash=run_id,
                every_events=every_events,
                every_wall_s=every_wall_s,
            ).install()

    from repro.observability.events import current_trace

    trace_id = current_trace()
    if trace_id is not None:
        # Distributed-trace stamp: the submission's content-derived
        # trace id, as the first decision record, so a stitched fleet
        # trace and this run's decision log can be joined offline.
        decisions = getattr(manager, "decisions", None)
        if decisions is not None:
            decisions.emit("trace_context", 0.0, trace=trace_id, run=run_id)

    try:
        result = manager.run()
    except SuspendRequested as exc:
        from repro.snapshot import suspend
        from repro.snapshot.state import write_snapshot

        if snap_path is not None:
            try:
                written = write_snapshot(manager, snap_path, spec_hash=run_id)
            except OSError:
                pass  # a full disk must not mask the suspension
            else:
                exc.snapshot_path = str(written)
        # The worker stays in the pool; clear the flag so a later
        # (e.g. guard-shed, then re-dispatched) run isn't instantly
        # re-suspended by this request.
        suspend.reset()
        raise
    if snap_path is not None:
        # The run completed: its snapshot is now stale state.
        snap_path.unlink(missing_ok=True)
    if telemetry_dir is not None:
        # The execution provenance (all the nondeterministic facts)
        # goes in a sidecar file, never in the result payload.
        from repro.observability.stats import write_telemetry_sidecar

        sidecar: dict[str, object] = {
            "run_id": run_id,
            **({"trace": trace_id} if trace_id is not None else {}),
            "exec": {
                "wall_clock_s": float(result.wallclock_seconds),
                "resume_count": int(getattr(manager, "resume_count", 0)),
                "restore_wall_s": float(
                    getattr(manager, "restore_wall_s", 0.0)
                ),
                "events_dispatched": int(result.events_dispatched),
            },
        }
        telemetry_summary = manager.telemetry_summary()
        if telemetry_summary is not None:
            sidecar.update(telemetry_summary)
        write_telemetry_sidecar(telemetry_dir, run_id, sidecar)

    summary = summarize(result)
    payload: dict[str, object] = {
        "kind": "simulate",
        "strategy": strategy,
        "num_nodes": num_nodes,
        "workload_name": manager.workload_name,
        "jobs": manager.workload_jobs,
        "summary": _jsonable(summary.as_dict()),
        # Exact-seconds duplicates of the summary's hour-scaled fields,
        # so gain ratios computed from payloads match in-process maths
        # bit for bit.
        "makespan_s": float(result.makespan),
        "mean_wait_s": float(summary.mean_wait),
        "completed": result.completed_jobs,
        "timeouts": result.timeout_jobs,
        "events_dispatched": result.events_dispatched,
        "scheduler_passes": result.scheduler_passes,
    }
    # Only present when the resilience layer was active, so payloads
    # of failure-free runs stay bit-identical to earlier versions.
    if result.resilience is not None:
        payload["resilience"] = _jsonable(result.resilience.as_dict())
    return payload


def _execute_experiment(params: Mapping[str, object]) -> dict[str, object]:
    from repro.analysis.experiments import EXPERIMENT_REGISTRY

    experiment_id = str(params["experiment"]).lower()
    driver = EXPERIMENT_REGISTRY.get(experiment_id)
    if driver is None:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {sorted(EXPERIMENT_REGISTRY)}"
        )
    output = driver()
    return {
        "kind": "experiment",
        "experiment": output.experiment,
        "rows": _jsonable(output.rows),
        "text": output.text,
    }


def execute_run(
    params: Mapping[str, object],
    bundle_dir: str | None = None,
    snapshot_dir: str | None = None,
    snapshot_every: str | None = None,
    telemetry_dir: str | None = None,
) -> dict[str, object]:
    """Execute one campaign run; returns a deterministic result dict.

    This is the function campaign workers unpickle and call; keep it
    importable as ``repro.slurm.entry.execute_run``.  The campaign
    runner partials in *bundle_dir*: when set, any
    :class:`~repro.errors.ReproError` raised by the run is serialised
    as a replay bundle at ``<bundle_dir>/<run_id>.bundle.json``
    (best-effort) before the error propagates to the pool, so the
    crash is reproducible even though the worker process is gone.

    With *snapshot_dir* set, ``simulate`` runs become preemption-safe:
    SIGTERM/SIGINT suspends the simulation at the next event boundary
    with a final state snapshot at ``<snapshot_dir>/<run_id>.snap``
    (*snapshot_every* additionally arms periodic snapshots — seconds,
    or ``<N>e`` for an event count), and a later execution of the same
    run resumes from that snapshot.  ``experiment`` runs have no
    mid-run snapshot support: suspension simply leaves them
    uncompleted and a resume re-executes them from scratch (they are
    deterministic, so the result is unchanged).

    With *telemetry_dir* set, ``simulate`` runs arm the telemetry
    subsystem and write a per-run sidecar file
    ``<telemetry_dir>/<run_id>.telemetry.json`` holding the execution
    provenance (wall-clock, resume count, restore time) plus the
    merged metrics hub, decision-trace summary and hot-loop profile.
    The result payload itself is byte-identical either way.
    """
    kind = params.get("kind")
    if kind not in ("simulate", "experiment"):
        raise ConfigError(f"unknown run kind {kind!r}")
    if snapshot_dir is not None:
        from repro.snapshot import suspend

        suspend.install_signal_handlers()
    try:
        if kind == "simulate":
            return _execute_simulate(
                params,
                snapshot_dir=snapshot_dir,
                snapshot_every=snapshot_every,
                telemetry_dir=telemetry_dir,
            )
        return _execute_experiment(params)
    except ReproError as exc:
        if bundle_dir is not None:
            from repro.diagnostics.bundle import capture_bundle

            try:
                path = capture_bundle(dict(params), exc, bundle_dir)
            except OSError:
                pass  # a full disk must not mask the original error
            else:
                exc.bundle_path = str(path)  # type: ignore[attr-defined]
        raise
