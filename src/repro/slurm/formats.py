"""Text views of system state, after SLURM's CLI tools.

``squeue``-style pending/running listings, ``sinfo``-style node-state
summaries, and ``sacct``-style accounting dumps.  Pure rendering: the
functions take the live manager (or an accounting log) and return
strings, used by the CLI and examples.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.cluster.node import NodeMode
from repro.slurm.accounting import JobRecord
from repro.slurm.job import Job, JobState

if TYPE_CHECKING:  # pragma: no cover
    from repro.slurm.manager import WorkloadManager


def _fmt_duration(seconds: float) -> str:
    """SLURM-style D-HH:MM:SS (days omitted when zero)."""
    seconds = max(0, int(round(seconds)))
    days, rem = divmod(seconds, 86_400)
    hours, rem = divmod(rem, 3600)
    minutes, secs = divmod(rem, 60)
    if days:
        return f"{days}-{hours:02d}:{minutes:02d}:{secs:02d}"
    return f"{hours:02d}:{minutes:02d}:{secs:02d}"


def _compress_node_ids(node_ids: Iterable[int]) -> str:
    """Render node ids as SLURM-style bracketed ranges: node[0-3,7]."""
    ids = sorted(node_ids)
    if not ids:
        return "node[]"
    ranges: list[str] = []
    start = prev = ids[0]
    for node_id in ids[1:]:
        if node_id == prev + 1:
            prev = node_id
            continue
        ranges.append(f"{start}-{prev}" if start != prev else f"{start}")
        start = prev = node_id
    ranges.append(f"{start}-{prev}" if start != prev else f"{start}")
    return f"node[{','.join(ranges)}]"


def squeue(manager: "WorkloadManager", max_rows: int = 40) -> str:
    """Pending + running jobs, like ``squeue``."""
    now = manager.sim.now
    header = (
        f"{'JOBID':>7} {'PARTITION':>9} {'NAME':>8} {'USER':>7} "
        f"{'ST':>2} {'TIME':>11} {'NODES':>5} {'SHARE':>5} NODELIST(REASON)"
    )
    rows = [header]

    def job_row(job: Job, state_code: str, time_str: str, where: str) -> str:
        return (
            f"{job.job_id:>7} {job.spec.partition:>9} "
            f"{(job.spec.app or 'job')[:8]:>8} {job.spec.user:>7} "
            f"{state_code:>2} {time_str:>11} {job.num_nodes:>5} "
            f"{'yes' if job.spec.shareable else 'no':>5} {where}"
        )

    running = [
        manager.jobs[job_id]
        for job_id in manager.cluster.running_job_ids()
        if job_id in manager.jobs  # exclude reservation phantoms
    ]
    running.sort(key=lambda j: (j.start_time, j.job_id))
    for job in running[:max_rows]:
        assert job.allocation is not None and job.start_time is not None
        rows.append(
            job_row(
                job,
                "R",
                _fmt_duration(now - job.start_time),
                _compress_node_ids(job.allocation.node_ids),
            )
        )
    pending = manager.queue.ordered(now)
    for job in pending[: max(0, max_rows - len(running))]:
        rows.append(
            job_row(job, "PD", _fmt_duration(now - job.spec.submit_time), "(Priority)")
        )
    shown = min(max_rows, len(running) + len(pending))
    total = len(running) + len(pending)
    if shown < total:
        rows.append(f"... {total - shown} more jobs")
    return "\n".join(rows)


def sinfo(manager: "WorkloadManager") -> str:
    """Node-state summary, like ``sinfo`` with mode breakdown."""
    counts = {mode: 0 for mode in NodeMode}
    doubly = 0
    for node in manager.cluster.nodes:
        counts[node.mode] += 1
        if len(node.occupant_ids) == 2:
            doubly += 1
    lines = [
        f"CLUSTER {manager.cluster.name}: {manager.cluster.num_nodes} nodes",
        f"  idle      : {counts[NodeMode.IDLE]}",
        f"  exclusive : {counts[NodeMode.EXCLUSIVE]}",
        f"  shared    : {counts[NodeMode.SHARED]} ({doubly} fully paired)",
    ]
    return "\n".join(lines)


_SACCT_STATE = {
    JobState.COMPLETED: "COMPLETED",
    JobState.TIMEOUT: "TIMEOUT",
    JobState.CANCELLED: "CANCELLED",
}


def sacct(records: Iterable[JobRecord], max_rows: int | None = None) -> str:
    """Accounting dump, like ``sacct``."""
    header = (
        f"{'JOBID':>7} {'JOBNAME':>8} {'NNODES':>6} {'STATE':>10} "
        f"{'SUBMIT':>10} {'WAIT':>11} {'ELAPSED':>11} {'SHARED':>7} {'DILAT':>6}"
    )
    rows = [header]
    for i, record in enumerate(records):
        if max_rows is not None and i >= max_rows:
            rows.append("...")
            break
        rows.append(
            f"{record.job_id:>7} {(record.app or 'job')[:8]:>8} "
            f"{record.num_nodes:>6} {_SACCT_STATE[record.state]:>10} "
            f"{record.submit_time:>10.0f} {_fmt_duration(record.wait_time):>11} "
            f"{_fmt_duration(record.run_time):>11} "
            f"{record.shared_seconds / record.run_time if record.run_time else 0:>7.2f} "
            f"{record.dilation:>6.2f}"
        )
    return "\n".join(rows)
