"""The workload manager: ties engine, cluster, strategy and model.

This is the simulated counterpart of ``slurmctld``: it owns the
pending queue, invokes the scheduling strategy at the same decision
points the real daemon does (job submission, job completion, optional
timer), applies placements to the cluster, enforces walltime limits,
and writes accounting records.

It also owns the *execution* semantics the strategies are evaluated
under: every job progresses at the rate the interference model
assigns given its current co-runners, with exact remaining-work
updates at every allocation change (see DESIGN.md, "execution model").
"""

from __future__ import annotations

import time as _wallclock
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cluster.allocation import Allocation, AllocationKind
from repro.cluster.machine import Cluster
from repro.cluster.partition import Partition
from repro.core.pairing import PairingPolicy
from repro.core.strategy import Placement, ScheduleContext, Strategy, make_strategy
from repro.diagnostics.crash import attach_crash_info
from repro.diagnostics.recorder import FlightRecorder
from repro.engine.events import Event, EventKind
from repro.engine.simulator import Simulator
from repro.errors import (
    ConfigError,
    ReproError,
    SchedulingError,
    SimulationError,
    WorkloadError,
)
from repro.interference.model import InterferenceModel
from repro.interference.profile import ResourceProfile
from repro.miniapps.suite import TRINITY_SUITE
from repro.observability.hub import TelemetryHub
from repro.observability.profiler import HotLoopProfiler
from repro.observability.trace import DecisionTrace
from repro.resilience import (
    NodeHealthTracker,
    ResilienceConfig,
    checkpoint_interval_for,
    eligible_rack_nodes,
    eligible_racks,
)
from repro.slurm.accounting import AccountingLog, JobRecord
from repro.slurm.config import SchedulerConfig
from repro.slurm.job import Job, JobState
from repro.slurm.priority import MultifactorPriority
from repro.slurm.failures import FailureModel
from repro.slurm.predictor import WalltimePredictor
from repro.slurm.queue import PendingQueue
from repro.slurm.reservations import Reservation
from repro.workload.trace import WorkloadTrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.collector import MetricsCollector
    from repro.metrics.resilience import FailureRecord, ResilienceReport

#: Relative tolerance for "the job's work is done" at a finish event.
_FINISH_TOLERANCE = 1e-6


@dataclass
class SimulationResult:
    """Everything a finished simulation exposes to analysis."""

    strategy: str
    cluster_nodes: int
    accounting: AccountingLog
    makespan: float
    first_submit: float
    events_dispatched: int
    scheduler_passes: int
    placements_applied: int
    wallclock_seconds: float
    collector: "MetricsCollector | None" = None
    notes: dict[str, float] = field(default_factory=dict)
    #: Failure/recovery summary; None unless resilience was enabled.
    resilience: "ResilienceReport | None" = None

    @property
    def completed_jobs(self) -> int:
        return sum(1 for r in self.accounting if r.state is JobState.COMPLETED)

    @property
    def timeout_jobs(self) -> int:
        return sum(1 for r in self.accounting if r.state is JobState.TIMEOUT)


class WorkloadManager:
    """Simulated batch-system control daemon."""

    def __init__(
        self,
        cluster: Cluster,
        config: SchedulerConfig | None = None,
        strategy: Strategy | None = None,
        collector: "MetricsCollector | None" = None,
        profiles: dict[str, ResourceProfile] | None = None,
        partitions: list[Partition] | None = None,
    ) -> None:
        self.cluster = cluster
        self.config = config or SchedulerConfig()
        self.strategy = strategy or make_strategy(self.config.strategy)
        self.collector = collector
        if self.config.sharing_mode == "time_sliced":
            from repro.interference.timeslice import TimeSlicedModel

            self.model: InterferenceModel = TimeSlicedModel(
                self.config.switch_overhead
            )
        else:
            self.model = InterferenceModel(self.config.model_params)
        self.pairing = PairingPolicy(
            model=self.model,
            threshold=self.config.share_threshold,
            max_dilation=self.config.walltime_grace,
            oblivious=self.config.pairing_oblivious,
        )
        if profiles is None:
            # Both bundled suites resolve out of the box; unknown apps
            # fall back to config.default_profile.
            from repro.miniapps.nas import NAS_SUITE

            profiles = {name: app.profile for name, app in TRINITY_SUITE.items()}
            profiles.update(
                {name: app.profile for name, app in NAS_SUITE.items()}
            )
        self.profiles = profiles
        self.priority = MultifactorPriority(
            self.config.priority_weights, num_nodes=cluster.num_nodes
        )
        self.queue = PendingQueue(self.priority)
        self.jobs: dict[int, Job] = {}
        self.accounting = AccountingLog()
        #: Name and size of the loaded workload trace(s); carried in
        #: the manager (and therefore in snapshots) so a restored run
        #: can rebuild its result payload without the original trace.
        self.workload_name: str = ""
        self.workload_jobs: int = 0
        diag = self.config.diagnostics
        self.recorder: FlightRecorder | None = (
            FlightRecorder(diag.ring_size) if diag.flight_recorder else None
        )
        # Telemetry (all None when off — the zero-overhead contract).
        telemetry = self.config.telemetry
        self.hub: TelemetryHub | None = (
            TelemetryHub() if telemetry.enabled else None
        )
        self.decisions: DecisionTrace | None = (
            DecisionTrace(
                path=telemetry.decisions_path,
                ring=telemetry.ring,
                flush_every=telemetry.flush_every,
                rotate_bytes=telemetry.rotate_bytes,
                keep=telemetry.keep,
                hub=self.hub,
            )
            if telemetry.enabled and telemetry.decisions
            else None
        )
        self.hot_profiler: HotLoopProfiler | None = (
            HotLoopProfiler() if telemetry.enabled and telemetry.profile else None
        )
        #: Resume provenance, stamped by snapshot restore (never part
        #: of result payloads — wall-clock facts are not deterministic).
        self.resume_count = 0
        self.restore_wall_s = 0.0
        sim_kwargs: dict = {
            "recorder": self.recorder,
            "wall_clock_limit_s": diag.wall_clock_limit_s,
            "stall_event_limit": diag.stall_event_limit,
            "profiler": self.hot_profiler,
        }
        if diag.max_events is not None:
            sim_kwargs["max_events"] = diag.max_events
        self.sim = Simulator(**sim_kwargs)
        self.scheduler_passes = 0
        self.placements_applied = 0
        self._terminal_jobs = 0
        self._pass_requested_at: float | None = None
        if partitions is None:
            partitions = [
                Partition(
                    name="regular",
                    node_ids=tuple(range(cluster.num_nodes)),
                    default=True,
                )
            ]
        self.partitions: dict[str, Partition] = {p.name: p for p in partitions}
        self.reservations: list[Reservation] = []
        self._phantom_seq = 0
        self.failure_model: FailureModel | None = None
        self.resilience: ResilienceConfig | None = None
        self.health: NodeHealthTracker | None = None
        self._failure_rng: "object | None" = None
        self._rack_rng: "object | None" = None
        self._next_failure_event: Event | None = None
        self._next_rack_failure_event: Event | None = None
        self.failures_injected = 0
        self.rack_failures_injected = 0
        self.jobs_requeued = 0
        self.jobs_failed = 0
        self.failure_log: "list[FailureRecord]" = []
        #: Jobs held on an unfinished afterok dependency, keyed by the
        #: dependency's job id.
        self._dependents: dict[int, list[Job]] = {}
        #: Sharded replay: True while later trace windows remain to be
        #: registered via :meth:`extend`.  Keeps the periodic backfill
        #: chain and failure processes armed across idle gaps where
        #: every *currently loaded* job is terminal — exactly the
        #: state a monolithic run (with all jobs loaded) never enters.
        self.expect_more_work = False
        #: Job ids evicted by :meth:`compact_terminated` in a terminal
        #: non-COMPLETED state, so late afterok dependents still cancel
        #: identically to a monolithic run.
        self._evicted_failed: set[int] = set()
        self.predictor: WalltimePredictor | None = (
            WalltimePredictor() if self.config.use_walltime_prediction else None
        )
        self.sim.on(EventKind.JOB_SUBMIT, self._on_submit)
        self.sim.on(EventKind.JOB_FINISH, self._on_finish)
        self.sim.on(EventKind.JOB_TIMEOUT, self._on_timeout)
        self.sim.on(EventKind.JOB_CANCEL, self._on_cancel)
        self.sim.on(EventKind.SCHEDULER_PASS, self._on_scheduler_pass)
        self.sim.on(EventKind.BACKFILL_PASS, self._on_backfill_tick)
        self.sim.on(EventKind.CHECKPOINT, self._on_reservation_edge)
        self.sim.on(EventKind.NODE_FAIL, self._on_node_fail)
        self.sim.on(EventKind.NODE_REPAIR, self._on_node_repair)

    # ------------------------------------------------------------------
    # Loading work
    # ------------------------------------------------------------------
    def load(self, trace: WorkloadTrace) -> None:
        """Register a workload trace; submissions become events."""
        self.workload_name = trace.name
        self.workload_jobs += len(trace)
        for spec in trace:
            if spec.job_id in self.jobs:
                raise WorkloadError(f"job id {spec.job_id} already loaded")
            if spec.num_nodes > self.cluster.num_nodes:
                if not self.config.reject_oversized:
                    raise WorkloadError(
                        f"job {spec.job_id} requests {spec.num_nodes} nodes; "
                        f"cluster has {self.cluster.num_nodes} "
                        f"(set reject_oversized to drop such jobs)"
                    )
                continue
            partition = self.partitions.get(spec.partition)
            if partition is not None and not partition.allow_sharing and spec.shareable:
                # Per-partition OverSubscribe=NO overrides the flag.
                spec = spec.with_(shareable=False)
            job = Job(spec)
            self.jobs[spec.job_id] = job
            self.sim.schedule(spec.submit_time, EventKind.JOB_SUBMIT, job)
        self._check_dependency_cycles()
        if (
            self.config.backfill_interval > 0
            and self.strategy.wants_periodic_pass
            and self.jobs
        ):
            self.sim.schedule(
                self.config.backfill_interval, EventKind.BACKFILL_PASS, None
            )

    def extend(self, trace: WorkloadTrace) -> int:
        """Register additional jobs mid-run (sharded window replay).

        Identical to :meth:`load`'s registration — same oversize
        handling, same per-partition sharing override, same cycle
        check — but never (re)kicks the periodic BACKFILL_PASS chain:
        that chain was armed once by the first window's :meth:`load`
        and must keep its original phase for sharded replay to stay
        byte-identical to a monolithic run.  Returns the number of
        jobs registered.
        """
        self.workload_jobs += len(trace)
        added = 0
        for spec in trace:
            if spec.job_id in self.jobs:
                raise WorkloadError(f"job id {spec.job_id} already loaded")
            if spec.num_nodes > self.cluster.num_nodes:
                if not self.config.reject_oversized:
                    raise WorkloadError(
                        f"job {spec.job_id} requests {spec.num_nodes} nodes; "
                        f"cluster has {self.cluster.num_nodes} "
                        f"(set reject_oversized to drop such jobs)"
                    )
                continue
            partition = self.partitions.get(spec.partition)
            if partition is not None and not partition.allow_sharing and spec.shareable:
                spec = spec.with_(shareable=False)
            job = Job(spec)
            self.jobs[spec.job_id] = job
            self.sim.schedule(spec.submit_time, EventKind.JOB_SUBMIT, job)
            added += 1
        self._check_dependency_cycles()
        return added

    def compact_terminated(self) -> "list[JobRecord]":
        """Evict terminal jobs and drain their accounting records.

        The constant-memory half of sharded replay: called at each
        window boundary, it pops every terminal job from the live
        tables (so the manager — and its snapshots — stay O(active),
        not O(trace)) and hands back the drained records in
        termination order for the caller to flush columnar.  Ids that
        terminated in a non-COMPLETED state are remembered in
        :attr:`_evicted_failed` so afterok dependents submitted in
        later windows still cancel.
        """
        terminal_ids = [
            job_id
            for job_id, job in self.jobs.items()
            if job.state.is_terminal
        ]
        for job_id in terminal_ids:
            job = self.jobs.pop(job_id)
            if job.state is not JobState.COMPLETED:
                self._evicted_failed.add(job_id)
        self._terminal_jobs -= len(terminal_ids)
        return self.accounting.drain()

    def _check_dependency_cycles(self) -> None:
        """Reject dependency cycles, which could never be satisfied."""
        state: dict[int, int] = {}  # 0 = visiting, 1 = done

        for start in self.jobs:
            if start in state:
                continue
            chain: list[int] = []
            current = start
            while True:
                if state.get(current) == 1:
                    break
                if state.get(current) == 0:
                    raise WorkloadError(
                        f"dependency cycle involving job {current}"
                    )
                state[current] = 0
                chain.append(current)
                dep = self.jobs[current].spec.depends_on
                if dep < 0 or dep not in self.jobs:
                    break
                current = dep
            for job_id in chain:
                state[job_id] = 1

    # ------------------------------------------------------------------
    # Profiles and predictions
    # ------------------------------------------------------------------
    def profile_of(self, job: Job) -> ResourceProfile:
        return self.profiles.get(job.spec.app, self.config.default_profile)

    def predicted_end(self, job: Job) -> float:
        """End estimate for a running job, scheduler-legal information.

        Without prediction this is the walltime-based upper bound;
        with the predictor enabled it is the corrected estimate,
        clamped to the present (a job that outlives its prediction is
        simply expected to finish "any moment now") and never beyond
        the enforced limit.
        """
        if job.start_time is None:
            raise SchedulingError(f"job {job.job_id} has not started")
        bound = job.start_time + job.effective_limit
        if self.predictor is None:
            return bound
        grace = (
            self.config.walltime_grace
            if job.allocation is not None and job.allocation.is_shared
            else 1.0
        )
        predicted = job.start_time + self.predictor.predict(job) * grace
        return min(bound, max(predicted, self.sim.now))

    # ------------------------------------------------------------------
    # Execution model
    # ------------------------------------------------------------------
    def _job_rate(self, job: Job) -> float:
        """Current speed: bulk-synchronous jobs run at the rate of
        their slowest node, scaled by the allocation's rack-locality
        factor (fixed at start)."""
        assert job.allocation is not None
        profile = self.profile_of(job)
        rate = 1.0
        for node_id in job.allocation.node_ids:
            co_id = self.cluster.node(node_id).co_runner_of(job.job_id)
            if co_id is None:
                continue
            co_profile = self.profile_of(self.jobs[co_id])
            rate = min(rate, self.model.speed(profile, co_profile))
        # Checkpoint writes steal wall time at a steady-state rate of
        # C/(tau+C); slowdown is 1.0 for non-checkpointing jobs.
        return rate * job.locality_factor * job.checkpoint_slowdown

    def _locality_factor(self, job: Job, node_ids: tuple[int, ...]) -> float:
        """Speed factor from rack spread (1.0 with the penalty off)."""
        racks = self.cluster.topology.racks_spanned(node_ids)
        job.racks_spanned = racks
        penalty = self.config.rack_comm_penalty
        if penalty <= 0.0 or racks <= 1:
            return 1.0
        comm = self.profile_of(job).comm_fraction
        return 1.0 / (1.0 + penalty * comm * (racks - 1))

    def _refresh_rate(self, job: Job) -> None:
        """Integrate progress, recompute the rate, reschedule finish."""
        if self.hot_profiler is None:
            self._refresh_rate_inner(job)
        else:
            started_ns = self.hot_profiler.now_ns()
            self._refresh_rate_inner(job)
            self.hot_profiler.record_phase(
                "interference", self.hot_profiler.now_ns() - started_ns
            )

    def _refresh_rate_inner(self, job: Job) -> None:
        now = self.sim.now
        job.integrate_progress(now, job.sharing_now)
        co_runners = self.cluster.jobs_sharing_with(job.job_id)
        job.sharing_now = bool(co_runners)
        job.corun_job_ids |= co_runners
        new_rate = self._job_rate(job)
        if job.finish_event is not None and not job.finish_event.cancelled:
            if abs(new_rate - job.rate) < 1e-12:
                return
            self.sim.cancel(job.finish_event)
        job.rate = new_rate
        job.finish_event = self.sim.schedule(
            job.eta(now), EventKind.JOB_FINISH, job
        )

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_submit(self, sim: Simulator, event: Event) -> None:
        job: Job = event.payload
        if job.state.is_terminal:
            return  # cancelled before submission took effect
        denial = self._admission_denial(job)
        if denial is not None:
            # SLURM rejects at submission; we record the job CANCELLED
            # so every loaded job still has an accounting record.
            if self.decisions is not None:
                code, message = denial
                self.decisions.reject(
                    sim.now, "admission", job.job_id, code, detail=message
                )
            self._cancel_terminal(job)
            return
        if self.decisions is not None:
            self.decisions.lifecycle(
                sim.now, job.job_id, "submitted", nodes=job.num_nodes
            )
        dep_id = job.spec.depends_on
        if dep_id >= 0:
            if dep_id in self.jobs:
                dependency = self.jobs[dep_id]
                if dependency.state is JobState.COMPLETED:
                    pass  # satisfied; fall through to queueing
                elif dependency.state.is_terminal:
                    # afterok on a failed job can never be satisfied.
                    self._cancel_terminal(job)
                    return
                else:
                    self._dependents.setdefault(dep_id, []).append(job)
                    return
            elif dep_id in self._evicted_failed:
                # The dependency terminated non-COMPLETED and was
                # compacted out of the live tables by a window
                # boundary; afterok can still never be satisfied.
                self._cancel_terminal(job)
                return
        self.queue.add(job)
        if self.collector is not None:
            self.collector.on_submit(sim.now, job, self)
        self._request_pass()

    def _cancel_terminal(self, job: Job) -> None:
        """Cancel a never-queued job and write its record."""
        job.mark_cancelled(self.sim.now)
        if self.decisions is not None:
            self.decisions.lifecycle(self.sim.now, job.job_id, "cancelled")
        self._terminal_jobs += 1
        self._maybe_disarm_failures()
        self.accounting.append(JobRecord.from_job(job))
        self._release_dependents(job)

    def _release_dependents(self, job: Job) -> None:
        """Resolve jobs held on *job*'s afterok dependency."""
        held = self._dependents.pop(job.job_id, None)
        if not held:
            return
        satisfied = job.state is JobState.COMPLETED
        for dependent in held:
            if dependent.state.is_terminal:
                continue  # e.g. scancelled while held
            denial = self._admission_denial(dependent) if satisfied else None
            if denial is not None:
                # Drains since submission may have shrunk the cluster
                # below the dependent's footprint.
                if self.decisions is not None:
                    code, message = denial
                    self.decisions.reject(
                        self.sim.now, "admission", dependent.job_id, code,
                        detail=message,
                    )
                self._cancel_terminal(dependent)
            elif satisfied:
                self.queue.add(dependent)
                if self.collector is not None:
                    self.collector.on_submit(self.sim.now, dependent, self)
            else:
                self._cancel_terminal(dependent)
        if satisfied:
            self._request_pass()

    def _admission_denial(self, job: Job) -> tuple[str, str] | None:
        """Why the job cannot be accepted, or None if admitted.

        Returns ``(reason_code, message)`` — the code is one of the
        admission entries in
        :data:`~repro.observability.REASON_CODES`, the message is the
        human-readable detail.
        """
        partition = self.partitions.get(job.spec.partition)
        if partition is None:
            return (
                "unknown_partition",
                f"unknown partition {job.spec.partition!r}",
            )
        ok, reason = partition.admits(job.num_nodes, job.spec.walltime_req)
        if not ok:
            return ("partition_limit", reason)
        smallest_node = min(node.memory_mb for node in self.cluster.nodes)
        if job.spec.memory_mb_per_node > smallest_node:
            return (
                "node_memory",
                f"requested {job.spec.memory_mb_per_node:.0f} MB/node "
                f"exceeds node memory {smallest_node} MB",
            )
        if self.health is not None and self.health.drained:
            capacity = self.cluster.num_nodes - len(self.health.drained)
            if job.num_nodes > capacity:
                return (
                    "avoid_nodes",
                    f"needs {job.num_nodes} nodes but only {capacity} "
                    f"remain in service after drains",
                )
        return None

    def _on_finish(self, sim: Simulator, event: Event) -> None:
        job: Job = event.payload
        if event is not job.finish_event:
            raise SimulationError(
                f"stale finish event fired for job {job.job_id}"
            )
        job.integrate_progress(sim.now, job.sharing_now)
        if job.remaining_work > _FINISH_TOLERANCE * job.spec.runtime_exclusive + 1e-6:
            raise SimulationError(
                f"job {job.job_id} finish event fired with "
                f"{job.remaining_work:.6f}s of work remaining"
            )
        self._end_job(job, JobState.COMPLETED)

    def _on_timeout(self, sim: Simulator, event: Event) -> None:
        job: Job = event.payload
        if event is not job.timeout_event:
            raise SimulationError(
                f"stale timeout event fired for job {job.job_id}"
            )
        job.integrate_progress(sim.now, job.sharing_now)
        self._end_job(job, JobState.TIMEOUT)

    def _on_cancel(self, sim: Simulator, event: Event) -> None:
        job: Job = event.payload
        if job.state.is_terminal:
            return  # raced with completion; nothing to do
        if job.is_pending:
            if job in self.queue:
                self.queue.remove(job)
            job.mark_cancelled(sim.now)
            self._terminal_jobs += 1
            self._maybe_disarm_failures()
            self.accounting.append(JobRecord.from_job(job))
            self._release_dependents(job)
            self._request_pass()  # queue head may have changed
            return
        job.integrate_progress(sim.now, job.sharing_now)
        self._end_job(job, JobState.CANCELLED)

    def cancel_job(self, job_id: int, at: float) -> None:
        """Schedule an ``scancel`` of *job_id* at simulated time *at*."""
        if job_id not in self.jobs:
            raise WorkloadError(f"job {job_id} is not loaded")
        self.sim.schedule(at, EventKind.JOB_CANCEL, self.jobs[job_id])

    # ------------------------------------------------------------------
    # Maintenance reservations
    # ------------------------------------------------------------------
    def add_reservation(self, reservation: Reservation) -> None:
        """Register a maintenance window (best-effort drain; see
        :mod:`repro.slurm.reservations`)."""
        self.reservations.append(reservation)
        self.sim.schedule(
            reservation.start, EventKind.CHECKPOINT, ("res_start", reservation)
        )
        self.sim.schedule(
            reservation.end, EventKind.CHECKPOINT, ("res_end", reservation)
        )

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def enable_failures(self, model: FailureModel, seed: int = 0) -> None:
        """Turn on exponential node failures with requeue-on-eviction.

        Legacy entry point, kept for compatibility: delegates to
        :meth:`enable_resilience` with unbounded requeues, no
        checkpointing and no blacklisting — exactly the original
        semantics (and the original RNG draw sequence).
        """
        if self.resilience is not None:
            raise ConfigError("failures already enabled")
        self.failure_model = model
        self.enable_resilience(
            ResilienceConfig(
                node_mtbf_hours=model.mtbf_node_hours,
                repair_hours=model.repair_hours,
                max_requeues=None,
                seed=seed,
            )
        )

    def enable_resilience(self, config: ResilienceConfig) -> None:
        """Activate the resilience layer for this simulation.

        Call after :meth:`load` and before :meth:`run`.  Arms the
        configured failure processes, assigns checkpoint intervals to
        the loaded jobs, and installs the health tracker.  Failure
        processes stop re-arming once every job is terminal, so the
        simulation still ends.
        """
        import numpy as np

        if self.resilience is not None:
            raise ConfigError("resilience already enabled")
        self.resilience = config
        self.priority.requeue_backoff = config.requeue_priority_backoff
        for job in self.jobs.values():
            tau = checkpoint_interval_for(config, job.num_nodes)
            if tau is not None:
                job.checkpoint_tau = tau
                job.checkpoint_overhead = config.checkpoint_overhead_s
        if config.any_failures:
            self.health = NodeHealthTracker(
                blacklist_failures=config.blacklist_failures,
                window_s=config.blacklist_window_hours * 3600.0,
            )
        if config.node_mtbf_hours is not None:
            self._failure_rng = np.random.default_rng(config.seed)
            self._schedule_next_failure()
        if config.rack_mtbf_hours is not None:
            # Independent deterministic stream so the rack process does
            # not perturb the node process's draw sequence.
            self._rack_rng = np.random.default_rng([config.seed, 0x7ACC])
            self._schedule_next_rack_failure()

    def _schedule_next_failure(self) -> None:
        assert self.resilience is not None and self._failure_rng is not None
        mean = self.resilience.node_interarrival_seconds(
            self.cluster.num_nodes
        )
        delay = float(self._failure_rng.exponential(mean))  # type: ignore[attr-defined]
        self._next_failure_event = self.sim.schedule_in(
            delay, EventKind.NODE_FAIL, "node"
        )

    def _schedule_next_rack_failure(self) -> None:
        assert self.resilience is not None and self._rack_rng is not None
        mean = self.resilience.rack_interarrival_seconds(
            self.cluster.topology.num_racks
        )
        delay = float(self._rack_rng.exponential(mean))  # type: ignore[attr-defined]
        self._next_rack_failure_event = self.sim.schedule_in(
            delay, EventKind.NODE_FAIL, "rack"
        )

    def _maybe_disarm_failures(self) -> None:
        """Cancel pending failures once no job can be affected, so the
        simulation clock is not dragged to a far-future event."""
        if self._terminal_jobs < len(self.jobs) or self.expect_more_work:
            return
        if self._next_failure_event is not None:
            self.sim.cancel(self._next_failure_event)
            self._next_failure_event = None
        if self._next_rack_failure_event is not None:
            self.sim.cancel(self._next_rack_failure_event)
            self._next_rack_failure_event = None

    def _on_node_fail(self, sim: Simulator, event: Event) -> None:
        process: str = event.payload
        if process == "rack":
            self._next_rack_failure_event = None
        else:
            self._next_failure_event = None
        if self._terminal_jobs >= len(self.jobs) and not self.expect_more_work:
            return  # nothing left to disturb
        if process == "rack":
            self._inject_rack_failure()
        else:
            self._inject_node_failure()
        if self._terminal_jobs < len(self.jobs) or self.expect_more_work:
            if process == "rack":
                self._schedule_next_rack_failure()
            else:
                self._schedule_next_failure()

    def _inject_node_failure(self) -> None:
        assert self._failure_rng is not None
        # Candidates: up nodes not held by a reservation phantom.
        candidates = [
            node
            for node in self.cluster.nodes
            if not node.down
            and all(occ in self.jobs for occ in node.occupant_ids)
        ]
        if not candidates:
            return
        index = int(self._failure_rng.integers(len(candidates)))  # type: ignore[attr-defined]
        self._fail_nodes([candidates[index]], kind="node")

    def _inject_rack_failure(self) -> None:
        assert self._rack_rng is not None
        real_ids = set(self.jobs)
        racks = eligible_racks(self.cluster, real_ids)
        if not racks:
            return
        index = int(self._rack_rng.integers(len(racks)))  # type: ignore[attr-defined]
        nodes = eligible_rack_nodes(self.cluster, racks[index], real_ids)
        self._fail_nodes(nodes, kind="rack")

    def _fail_nodes(self, nodes: list, kind: str) -> None:
        """Take *nodes* down together: evict victims, start repairs."""
        from repro.metrics.resilience import FailureRecord

        now = self.sim.now
        self.failures_injected += 1
        if kind == "rack":
            self.rack_failures_injected += 1
        victim_ids: list[int] = []
        seen: set[int] = set()
        for node in nodes:
            for job_id in node.occupant_ids:
                if job_id not in seen:
                    seen.add(job_id)
                    victim_ids.append(job_id)
        lost_node_seconds = 0.0
        failed_ids: list[int] = []
        for job_id in victim_ids:
            lost_node_seconds += self._evict_for_failure(
                self.jobs[job_id], failed_ids
            )
        repair = (
            self.resilience.repair_seconds
            if self.resilience is not None
            else 0.0
        )
        for node in nodes:
            node.mark_down()
            node.mark_repairing()
            if self.health is not None:
                self.health.record_failure(node.node_id, now)
            self.sim.schedule_in(repair, EventKind.NODE_REPAIR, node.node_id)
        self.failure_log.append(
            FailureRecord(
                time=now,
                kind=kind,
                node_ids=tuple(node.node_id for node in nodes),
                evicted_job_ids=tuple(victim_ids),
                failed_job_ids=tuple(failed_ids),
                lost_node_seconds=lost_node_seconds,
            )
        )
        if self.decisions is not None:
            self.decisions.event(
                now, f"{kind}_fail",
                nodes=[node.node_id for node in nodes],
                evicted=victim_ids, failed=failed_ids,
                lost_node_s=lost_node_seconds,
            )
        self._request_pass()

    def _evict_for_failure(self, job: Job, failed_ids: list[int]) -> float:
        """Evict a running job whose node failed.

        Requeues it (resuming from its last checkpoint, if any) or —
        once the requeue budget is exhausted — fails it terminally.
        Returns the progress discarded, in node-seconds.
        """
        now = self.sim.now
        job.integrate_progress(now, job.sharing_now)
        if job.finish_event is not None:
            self.sim.cancel(job.finish_event)
        if job.timeout_event is not None:
            self.sim.cancel(job.timeout_event)
        affected = self.cluster.jobs_sharing_with(job.job_id)
        self.cluster.release(job.job_id)
        # Refresh surviving co-runners before any collector callback
        # samples the cluster: their shared lanes just emptied.
        for other_id in sorted(affected):
            if self.jobs[other_id].is_running:
                self._refresh_rate(self.jobs[other_id])
        max_requeues = (
            self.resilience.max_requeues
            if self.resilience is not None
            else None
        )
        if max_requeues is not None and job.requeues >= max_requeues:
            lost = job.progress
            job.mark_failed(now)
            if self.decisions is not None:
                self.decisions.lifecycle(
                    now, job.job_id, "failed", requeues=job.requeues
                )
            failed_ids.append(job.job_id)
            self.jobs_failed += 1
            self._terminal_jobs += 1
            self._maybe_disarm_failures()
            record = JobRecord.from_job(job)
            self.accounting.append(record)
            self.priority.charge(job.spec.user, record.node_seconds_allocated)
            self._release_dependents(job)
            if self.collector is not None:
                self.collector.on_job_end(now, record, self)
        else:
            saved = job.checkpointed_progress()
            lost = job.progress - saved
            job.mark_requeued(now, saved=saved)
            if self.decisions is not None:
                self.decisions.lifecycle(
                    now, job.job_id, "requeued", saved_s=saved, lost_s=lost
                )
            self.jobs_requeued += 1
            self.queue.add(job)
        return lost * job.num_nodes

    def _on_node_repair(self, sim: Simulator, event: Event) -> None:
        node = self.cluster.node(event.payload)
        if self.health is not None and self.health.should_drain(
            node.node_id, sim.now
        ):
            node.mark_drained()
            self.health.mark_drained(node.node_id)
            if self.decisions is not None:
                self.decisions.event(sim.now, "node_drain", node=node.node_id)
            self._cancel_unsatisfiable()
        else:
            node.mark_up()
            if self.decisions is not None:
                self.decisions.event(sim.now, "node_repair", node=node.node_id)
            self._request_pass()
        if self.collector is not None:
            self.collector.on_sample(sim.now, self)

    def _cancel_unsatisfiable(self) -> None:
        """Cancel pending jobs larger than the non-drained capacity.

        Without this, draining nodes could deadlock the simulation: a
        queued job needing more nodes than will ever return to service
        would wait forever.
        """
        capacity = self.cluster.num_nodes - (
            len(self.health.drained) if self.health is not None else 0
        )
        for job in [j for j in self.queue if j.num_nodes > capacity]:
            self.queue.remove(job)
            self._cancel_terminal(job)
        for held in list(self._dependents.values()):
            for job in list(held):
                if job.num_nodes > capacity and not job.state.is_terminal:
                    self._cancel_terminal(job)

    def _on_reservation_edge(self, sim: Simulator, event: Event) -> None:
        kind, reservation = event.payload
        if self.decisions is not None:
            self.decisions.event(
                sim.now, kind, reservation=reservation.name,
                nodes=reservation.num_nodes,
            )
        if kind == "res_start":
            idle = [n.node_id for n in self.cluster.idle_nodes()]
            granted = idle[: reservation.num_nodes]
            reservation.shortfall = reservation.num_nodes - len(granted)
            reservation.granted_node_ids = tuple(granted)
            if granted:
                self._phantom_seq -= 1
                phantom_id = self._phantom_seq
                self.cluster.allocate(
                    self.cluster.build_exclusive(phantom_id, granted)
                )
                # Stash the phantom id on the reservation for release.
                reservation._phantom_id = phantom_id  # type: ignore[attr-defined]
        elif kind == "res_end":
            phantom_id = getattr(reservation, "_phantom_id", None)
            if phantom_id is not None and self.cluster.has_allocation(phantom_id):
                self.cluster.release(phantom_id)
                reservation.granted_node_ids = ()
            self._request_pass()
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown checkpoint payload {kind!r}")
        if self.collector is not None:
            self.collector.on_sample(sim.now, self)

    def _end_job(self, job: Job, final_state: JobState) -> None:
        now = self.sim.now
        if job.finish_event is not None:
            self.sim.cancel(job.finish_event)
            job.finish_event = None
        if job.timeout_event is not None:
            self.sim.cancel(job.timeout_event)
            job.timeout_event = None
        affected = self.cluster.jobs_sharing_with(job.job_id)
        self.cluster.release(job.job_id)
        if final_state is JobState.COMPLETED:
            job.mark_completed(now)
        elif final_state is JobState.CANCELLED:
            job.mark_cancelled(now)
        else:
            job.mark_timeout(now)
        self._terminal_jobs += 1
        self._maybe_disarm_failures()
        record = JobRecord.from_job(job)
        self.accounting.append(record)
        if self.decisions is not None:
            self.decisions.lifecycle(
                now, job.job_id, final_state.name.lower(),
                shared=record.was_shared,
            )
        if self.hub is not None:
            self.hub.observe("job.wait_s", record.wait_time)
            self.hub.observe("job.run_s", record.run_time)
        self.priority.charge(job.spec.user, record.node_seconds_allocated)
        if self.predictor is not None and final_state is JobState.COMPLETED:
            self.predictor.observe(
                job.spec.user, record.run_time, job.spec.walltime_req
            )
        for other_id in sorted(affected):
            self._refresh_rate(self.jobs[other_id])
        self._release_dependents(job)
        if self.collector is not None:
            self.collector.on_job_end(now, record, self)
        self._request_pass()

    def _on_backfill_tick(self, sim: Simulator, event: Event) -> None:
        if self.decisions is not None:
            self.decisions.event(sim.now, "backfill_tick")
        self._request_pass()
        if self._terminal_jobs < len(self.jobs) or self.expect_more_work:
            sim.schedule_in(
                self.config.backfill_interval, EventKind.BACKFILL_PASS, None
            )

    def _request_pass(self) -> None:
        """Coalesce all same-timestamp triggers into one pass."""
        if self._pass_requested_at == self.sim.now:
            return
        self._pass_requested_at = self.sim.now
        self.sim.schedule(self.sim.now, EventKind.SCHEDULER_PASS, None)

    def _on_scheduler_pass(self, sim: Simulator, event: Event) -> None:
        self._pass_requested_at = None
        self.scheduler_passes += 1
        if not self.queue:
            if self.decisions is not None:
                self.decisions.span(
                    sim.now, "scheduler_pass", pending=0, placed=0
                )
            return
        running = {
            job_id: self.jobs[job_id]
            for job_id in self.cluster.running_job_ids()
            if job_id in self.jobs  # exclude reservation phantoms
        }
        avoid: frozenset[int] = frozenset()
        if (
            self.health is not None
            and self.health.blacklist_failures is not None
        ):
            avoid = self.health.suspect_nodes(sim.now)
        pending = self.queue.ordered(sim.now)
        ctx = ScheduleContext(
            now=sim.now,
            cluster=self.cluster,
            pending=pending,
            running=running,
            profile_of=self.profile_of,
            predicted_end=self.predicted_end,
            pairing=self.pairing,
            walltime_grace=self.config.walltime_grace,
            allow_open_shared=self.config.allow_open_shared,
            topology_aware=self.config.topology_aware,
            predict_runtime=(
                self.predictor.predict if self.predictor is not None else None
            ),
            avoid_nodes=avoid,
            decisions=self.decisions,
        )
        profiler = self.hot_profiler
        if profiler is None:
            placements = self.strategy.schedule(ctx)
            for placement in placements:
                self._start_job(placement)
            if placements and self.collector is not None:
                self.collector.on_sample(sim.now, self)
        else:
            started_ns = profiler.now_ns()
            placements = self.strategy.schedule(ctx)
            placed_ns = profiler.now_ns()
            profiler.record_phase("placement", placed_ns - started_ns)
            for placement in placements:
                self._start_job(placement)
            applied_ns = profiler.now_ns()
            profiler.record_phase("dispatch", applied_ns - placed_ns)
            if placements and self.collector is not None:
                self.collector.on_sample(sim.now, self)
                profiler.record_phase("metrics", profiler.now_ns() - applied_ns)
        if self.decisions is not None:
            self.decisions.span(
                sim.now, "scheduler_pass",
                pending=len(pending), running=len(running),
                placed=len(placements),
            )
        if self.hub is not None:
            self.hub.set_gauge("queue.pending", float(len(self.queue)))
            self.hub.set_gauge("cluster.running", float(len(running)))

    # ------------------------------------------------------------------
    # Starting jobs
    # ------------------------------------------------------------------
    def _start_job(self, placement: Placement) -> None:
        job = placement.job
        now = self.sim.now
        self.queue.remove(job)
        if placement.kind is AllocationKind.EXCLUSIVE:
            request = self.cluster.build_exclusive(job.job_id, placement.node_ids)
        else:
            request = self.cluster.build_shared(job.job_id, placement.node_ids)
        allocation: Allocation = self.cluster.allocate(request)
        job.mark_started(now, allocation)
        job.locality_factor = self._locality_factor(job, allocation.node_ids)
        if placement.kind is AllocationKind.SHARED:
            job.effective_limit = job.spec.walltime_req * self.config.walltime_grace
        else:
            job.effective_limit = job.spec.walltime_req
        # Rate under the co-runners present right now.
        co_runners = self.cluster.jobs_sharing_with(job.job_id)
        job.sharing_now = bool(co_runners)
        job.corun_job_ids |= co_runners
        job.rate = self._job_rate(job)
        job.finish_event = self.sim.schedule(job.eta(now), EventKind.JOB_FINISH, job)
        job.timeout_event = self.sim.schedule(
            now + job.effective_limit, EventKind.JOB_TIMEOUT, job
        )
        # Joining a lane changes the resident's rate.
        for other_id in sorted(co_runners):
            self._refresh_rate(self.jobs[other_id])
        self.placements_applied += 1
        if self.decisions is not None:
            self.decisions.lifecycle(
                now, job.job_id, "started",
                kind=placement.kind.name.lower(), nodes=len(placement.node_ids),
            )
        if self.collector is not None:
            self.collector.on_start(now, job, self)

    # ------------------------------------------------------------------
    # Telemetry export
    # ------------------------------------------------------------------
    def telemetry_summary(self) -> dict[str, object] | None:
        """JSON-ready telemetry sections, or None with telemetry off.

        Nondeterministic by nature (the profile holds wall-clock);
        callers must keep this OUT of result payloads and store
        records — it belongs in ``--json`` extras and sidecar files.
        """
        if self.hub is None:
            return None
        summary: dict[str, object] = {"metrics": self.hub.as_dict()}
        if self.decisions is not None:
            summary["decisions"] = self.decisions.summary()
        if self.hot_profiler is not None:
            summary["profile"] = self.hot_profiler.as_dict()
        return summary

    # ------------------------------------------------------------------
    # Snapshot / restore (see repro.snapshot)
    # ------------------------------------------------------------------
    def snapshot(self, path, spec_hash: str | None = None):
        """Atomically persist this manager's complete state to *path*.

        Captures the event heap, RNG bit-generator states, cluster and
        allocation occupancy, queue/accounting/metric state — the
        whole simulation world — so :meth:`restore` + :meth:`run`
        continues byte-identically to an uninterrupted run.
        """
        from repro.snapshot.state import write_snapshot

        return write_snapshot(self, path, spec_hash=spec_hash)

    @classmethod
    def restore(cls, path, expect_spec_hash: str | None = None):
        """Rebuild a manager from a snapshot file (verified first)."""
        from repro.errors import SnapshotError
        from repro.snapshot.state import read_snapshot

        manager = read_snapshot(path, expect_spec_hash=expect_spec_hash)
        if not isinstance(manager, cls):
            raise SnapshotError(
                f"{path}: snapshot holds a {type(manager).__name__}, "
                f"not a {cls.__name__}",
                reason="format",
            )
        return manager

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> SimulationResult:
        """Run the simulation to completion and summarise it."""
        from repro.metrics.resilience import resilience_report

        started = _wallclock.perf_counter()
        try:
            self.sim.run(until=until)
            unfinished = len(self.jobs) - self._terminal_jobs
            if unfinished and until is None:
                raise SimulationError(
                    f"simulation drained its event heap with {unfinished} "
                    f"jobs unfinished — scheduling deadlock"
                )
        except ReproError as exc:
            # Pin the flight-recorder dump and a state snapshot onto
            # the escaping error so callers can serialise a replay
            # bundle (see repro.diagnostics).
            attach_crash_info(exc, manager=self)
            raise
        elapsed = _wallclock.perf_counter() - started
        if self.decisions is not None:
            self.decisions.close()
        if self.hub is not None:
            self.hub.inc("sim.runs")
            self.hub.set_gauge(
                "sim.events_dispatched", float(self.sim.events_dispatched)
            )
            self.hub.set_gauge(
                "sim.scheduler_passes", float(self.scheduler_passes)
            )
        ends = [r.end_time for r in self.accounting]
        submits = [j.spec.submit_time for j in self.jobs.values()]
        makespan = (max(ends) - min(submits)) if ends else 0.0
        if self.collector is not None:
            self.collector.on_sim_end(self.sim.now, self)
        return SimulationResult(
            strategy=self.strategy.name,
            cluster_nodes=self.cluster.num_nodes,
            accounting=self.accounting,
            makespan=makespan,
            first_submit=min(submits) if submits else 0.0,
            events_dispatched=self.sim.events_dispatched,
            scheduler_passes=self.scheduler_passes,
            placements_applied=self.placements_applied,
            wallclock_seconds=elapsed,
            collector=self.collector,
            resilience=(
                resilience_report(self) if self.resilience is not None else None
            ),
        )


def build_manager(
    trace: WorkloadTrace,
    num_nodes: int = 128,
    strategy: str | Strategy = "easy_backfill",
    config: SchedulerConfig | None = None,
    collect_metrics: bool = True,
) -> WorkloadManager:
    """Construct a ready-to-run manager exactly as :func:`run_simulation`
    would — the shared build path that keeps direct runs, campaign
    workers, and snapshot-resumed runs on identical state."""
    from repro.metrics.collector import MetricsCollector

    if config is None:
        config = SchedulerConfig(
            strategy=strategy if isinstance(strategy, str) else strategy.name
        )
    cluster = Cluster.homogeneous(num_nodes)
    strategy_obj = (
        strategy if isinstance(strategy, Strategy) else make_strategy(strategy)
    )
    collector = MetricsCollector(cluster) if collect_metrics else None
    manager = WorkloadManager(
        cluster, config=config, strategy=strategy_obj, collector=collector
    )
    manager.load(trace)
    if config.resilience is not None:
        manager.enable_resilience(config.resilience)
    return manager


def run_simulation(
    trace: WorkloadTrace,
    num_nodes: int = 128,
    strategy: str | Strategy = "easy_backfill",
    config: SchedulerConfig | None = None,
    collect_metrics: bool = True,
) -> SimulationResult:
    """One-call convenience API: simulate *trace* under a strategy.

    This is the function the examples and benchmarks build on.
    """
    return build_manager(
        trace,
        num_nodes=num_nodes,
        strategy=strategy,
        config=config,
        collect_metrics=collect_metrics,
    ).run()
