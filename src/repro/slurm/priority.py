"""Multifactor job priority, after SLURM's priority/multifactor plugin.

Priority is a weighted sum of normalised factors:

* **age** — waiting time, saturating at ``age_saturation`` (prevents
  unbounded priority inflation, exactly as SLURM caps the age factor);
* **size** — larger jobs first (the usual HPC convention, so backfill
  has something to fill around) — normalised by cluster size;
* **fairshare** — ``2^(-usage/share)`` decay of a user's recent
  consumption, SLURM's classic fairshare curve;
* **qos** — per-job static boost (unused by the evaluation but part of
  the substrate).

Ties break on submit order (FIFO), which keeps strategy comparisons
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.slurm.job import Job


@dataclass(frozen=True)
class PriorityWeights:
    """Relative weights of the priority factors."""

    age: float = 1000.0
    size: float = 200.0
    fairshare: float = 500.0
    qos: float = 0.0
    #: Wait time (seconds) at which the age factor saturates at 1.0.
    age_saturation: float = 7 * 86_400.0

    def __post_init__(self) -> None:
        for name in ("age", "size", "fairshare", "qos"):
            if getattr(self, name) < 0:
                raise ConfigError(f"priority weight {name} must be >= 0")
        if self.age_saturation <= 0:
            raise ConfigError("age_saturation must be positive")


#: Default QoS classes and their normalised factors.  Unknown classes
#: fall back to "normal".
DEFAULT_QOS_LEVELS: dict[str, float] = {"low": 0.0, "normal": 0.5, "high": 1.0}


class MultifactorPriority:
    """Computes job priorities and tracks fairshare usage."""

    def __init__(
        self,
        weights: PriorityWeights | None = None,
        num_nodes: int = 1,
        qos_levels: dict[str, float] | None = None,
    ):
        self.weights = weights or PriorityWeights()
        self.num_nodes = max(1, int(num_nodes))
        #: Accumulated node-seconds charged per user.
        self.usage: dict[str, float] = {}
        #: Normalisation constant for the fairshare decay curve.
        self.share_norm: float = 50_000.0
        #: Priority subtracted per requeue a job has suffered, so
        #: repeatedly failing jobs back off instead of immediately
        #: reclaiming the nodes that just failed under them (0 = off).
        self.requeue_backoff: float = 0.0
        self.qos_levels = dict(
            DEFAULT_QOS_LEVELS if qos_levels is None else qos_levels
        )

    def qos_factor(self, qos: str) -> float:
        """Normalised QoS factor in [0, 1] (unknown classes = normal)."""
        return self.qos_levels.get(
            qos, self.qos_levels.get("normal", 0.5)
        )

    # ------------------------------------------------------------------
    # Fairshare bookkeeping
    # ------------------------------------------------------------------
    def charge(self, user: str, node_seconds: float) -> None:
        """Record consumed node-seconds against *user*."""
        if node_seconds < 0:
            raise ConfigError(f"cannot charge negative usage {node_seconds}")
        self.usage[user] = self.usage.get(user, 0.0) + node_seconds

    def fairshare_factor(self, user: str) -> float:
        """SLURM's classic curve: 2^(-usage/norm), in (0, 1]."""
        usage = self.usage.get(user, 0.0)
        return 2.0 ** (-usage / self.share_norm)

    # ------------------------------------------------------------------
    # Priority
    # ------------------------------------------------------------------
    def priority(self, job: Job, now: float) -> float:
        """Priority of *job* at time *now* (higher runs first)."""
        w = self.weights
        wait = max(0.0, now - job.spec.submit_time)
        age_factor = min(1.0, wait / w.age_saturation)
        size_factor = min(1.0, job.num_nodes / self.num_nodes)
        value = (
            w.age * age_factor
            + w.size * size_factor
            + w.fairshare * self.fairshare_factor(job.spec.user)
            + w.qos * self.qos_factor(job.spec.qos)
        )
        if self.requeue_backoff > 0.0 and job.requeues > 0:
            value -= self.requeue_backoff * job.requeues
        return value

    def refresh(self, jobs: list[Job], now: float) -> None:
        """Recompute and store priorities on the given jobs."""
        for job in jobs:
            job.priority = self.priority(job, now)

    def order(self, jobs: list[Job], now: float) -> list[Job]:
        """Jobs sorted by descending priority, FIFO on ties."""
        self.refresh(jobs, now)
        return sorted(
            jobs, key=lambda j: (-j.priority, j.spec.submit_time, j.job_id)
        )
