"""Maintenance reservations (best-effort drain windows).

A :class:`Reservation` blocks a number of nodes over a time window —
the simulated counterpart of ``scontrol create reservation`` for
maintenance.  The manager realises a reservation as a *phantom
occupancy*: at the window start it seizes up to the requested number
of idle nodes exclusively under a negative phantom id and releases
them at the window end.

This is deliberately **best-effort**: if fewer nodes are idle at the
start, only those are seized and the shortfall is recorded on the
reservation.  (Production SLURM guarantees windows by draining ahead
of time; admins using this substrate schedule reservations the same
way — ahead of load — and the shortfall field makes violations
visible in tests and reports.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass
class Reservation:
    """One maintenance window.

    Attributes
    ----------
    name:
        Label shown in reports.
    start, end:
        Simulated-time window; nodes are held over [start, end).
    num_nodes:
        Nodes requested for the window.
    granted_node_ids:
        Nodes actually seized (filled in at window start).
    shortfall:
        Requested minus granted (0 when fully honoured).
    """

    name: str
    start: float
    end: float
    num_nodes: int
    granted_node_ids: tuple[int, ...] = field(default=())
    shortfall: int = field(default=0)

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigError(
                f"reservation {self.name!r}: window [{self.start}, {self.end}) "
                f"is invalid"
            )
        if self.num_nodes < 1:
            raise ConfigError(
                f"reservation {self.name!r}: num_nodes must be >= 1"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def active_granted(self) -> int:
        return len(self.granted_node_ids)

    def __str__(self) -> str:
        return (
            f"reservation {self.name}: {self.num_nodes} nodes "
            f"[{self.start:.0f}, {self.end:.0f})"
        )
