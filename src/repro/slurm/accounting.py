"""Accounting: per-job completion records, as ``sacct`` would show.

Records are immutable and written exactly once, when a job reaches a
terminal state.  The log offers the aggregations the metrics layer and
the report tables consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.errors import JobStateError
from repro.slurm.job import Job, JobState


@dataclass(frozen=True)
class JobRecord:
    """Final accounting entry for one job."""

    job_id: int
    app: str
    user: str
    partition: str
    num_nodes: int
    submit_time: float
    start_time: float
    end_time: float
    state: JobState
    was_shared: bool
    shared_seconds: float
    dilation: float
    runtime_exclusive: float
    walltime_req: float
    #: Exclusive-equivalent seconds of work actually completed (equals
    #: ``runtime_exclusive`` for COMPLETED jobs, less for TIMEOUT).
    work_done: float
    #: Racks the allocation spanned (1 when never started).
    racks_spanned: int = 1
    #: Nodes the job ran on (empty when never started).
    node_ids: tuple[int, ...] = ()
    #: Node-failure requeues the job suffered before finishing.
    requeues: int = 0
    #: Work-seconds discarded by those failures.
    lost_work: float = 0.0

    @property
    def wait_time(self) -> float:
        return self.start_time - self.submit_time

    @property
    def run_time(self) -> float:
        return self.end_time - self.start_time

    @property
    def response_time(self) -> float:
        return self.end_time - self.submit_time

    def bounded_slowdown(self, tau: float = 10.0) -> float:
        """Feitelson's bounded slowdown with threshold *tau* seconds."""
        return max(
            1.0, (self.wait_time + self.run_time) / max(self.run_time, tau)
        )

    @property
    def node_seconds_allocated(self) -> float:
        return self.num_nodes * self.run_time

    @property
    def useful_node_seconds(self) -> float:
        """Exclusive-equivalent work delivered.

        COMPLETED jobs delivered their whole job; a TIMEOUT job only
        the progress it reached before the kill.
        """
        return self.num_nodes * self.work_done

    @classmethod
    def from_job(cls, job: Job) -> "JobRecord":
        if not job.state.is_terminal:
            raise JobStateError(
                f"job {job.job_id} in state {job.state.value} has no final record"
            )
        if job.start_time is None:
            # Cancelled while pending: zero-length "run" at the cancel
            # instant, so wait_time reflects the time spent queued.
            end = job.end_time if job.end_time is not None else job.spec.submit_time
            return cls(
                job_id=job.job_id,
                app=job.spec.app,
                user=job.spec.user,
                partition=job.spec.partition,
                num_nodes=job.num_nodes,
                submit_time=job.spec.submit_time,
                start_time=end,
                end_time=end,
                state=job.state,
                was_shared=False,
                shared_seconds=0.0,
                dilation=0.0,
                runtime_exclusive=job.spec.runtime_exclusive,
                walltime_req=job.spec.walltime_req,
                work_done=0.0,
            )
        return cls(
            job_id=job.job_id,
            app=job.spec.app,
            user=job.spec.user,
            partition=job.spec.partition,
            num_nodes=job.num_nodes,
            submit_time=job.spec.submit_time,
            start_time=job.start_time,
            end_time=job.end_time if job.end_time is not None else job.start_time,
            state=job.state,
            was_shared=job.shared_seconds > 0.0,
            shared_seconds=job.shared_seconds,
            dilation=job.dilation,
            runtime_exclusive=job.spec.runtime_exclusive,
            walltime_req=job.spec.walltime_req,
            work_done=max(
                0.0, job.spec.runtime_exclusive - job.remaining_work
            ),
            racks_spanned=job.racks_spanned,
            node_ids=(
                job.allocation.node_ids if job.allocation is not None else ()
            ),
            requeues=job.requeues,
            lost_work=job.lost_work,
        )


class AccountingLog:
    """Append-only store of :class:`JobRecord` s plus aggregations."""

    def __init__(self) -> None:
        self._records: list[JobRecord] = []
        self._by_id: dict[int, JobRecord] = {}

    def append(self, record: JobRecord) -> None:
        if record.job_id in self._by_id:
            raise JobStateError(f"job {record.job_id} already has a final record")
        self._records.append(record)
        self._by_id[record.job_id] = record

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[JobRecord]:
        return iter(self._records)

    def get(self, job_id: int) -> JobRecord:
        try:
            return self._by_id[job_id]
        except KeyError:
            raise JobStateError(f"no accounting record for job {job_id}") from None

    def drain(self) -> list[JobRecord]:
        """Hand over all records and reset to empty (append order kept).

        Used by sharded replay's window compaction: records flushed to
        the columnar store must leave the in-memory log, or a million-
        job replay accumulates a million records anyway.  Draining
        also clears the by-id index, so a drained id *could* be
        appended again — the manager guarantees it never is (a job
        terminates in exactly one window).
        """
        records = self._records
        self._records = []
        self._by_id = {}
        return records

    def completed(self) -> list[JobRecord]:
        return [r for r in self._records if r.state is JobState.COMPLETED]

    def select(self, predicate: Callable[[JobRecord], bool]) -> list[JobRecord]:
        return [r for r in self._records if predicate(r)]

    # ------------------------------------------------------------------
    # Aggregations
    # ------------------------------------------------------------------
    def array(self, field: Callable[[JobRecord], float]) -> np.ndarray:
        return np.array([field(r) for r in self._records], dtype=np.float64)

    def mean_wait(self) -> float:
        if not self._records:
            return 0.0
        return float(self.array(lambda r: r.wait_time).mean())

    def median_wait(self) -> float:
        if not self._records:
            return 0.0
        return float(np.median(self.array(lambda r: r.wait_time)))

    def mean_bounded_slowdown(self, tau: float = 10.0) -> float:
        if not self._records:
            return 0.0
        return float(self.array(lambda r: r.bounded_slowdown(tau)).mean())

    def shared_job_fraction(self) -> float:
        if not self._records:
            return 0.0
        return float(self.array(lambda r: 1.0 if r.was_shared else 0.0).mean())

    def total_useful_node_seconds(self) -> float:
        return float(self.array(lambda r: r.useful_node_seconds).sum()) if self._records else 0.0
