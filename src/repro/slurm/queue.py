"""The pending-job queue."""

from __future__ import annotations

from typing import Iterator

from repro.errors import SchedulingError
from repro.slurm.job import Job
from repro.slurm.priority import MultifactorPriority


class PendingQueue:
    """Jobs awaiting allocation, served in multifactor-priority order.

    Insertion order is preserved internally; priority ordering is
    computed on demand (priorities are time-dependent through the age
    factor, so a static order would go stale).
    """

    def __init__(self, priority: MultifactorPriority):
        self._jobs: dict[int, Job] = {}
        self.priority = priority

    def __len__(self) -> int:
        return len(self._jobs)

    def __bool__(self) -> bool:
        return bool(self._jobs)

    def __contains__(self, job: Job) -> bool:
        return job.job_id in self._jobs

    def __iter__(self) -> Iterator[Job]:
        """Iterate in submit order (not priority order)."""
        return iter(self._jobs.values())

    def add(self, job: Job) -> None:
        if not job.is_pending:
            raise SchedulingError(
                f"job {job.job_id} is {job.state.value}; only PENDING jobs queue"
            )
        if job.job_id in self._jobs:
            raise SchedulingError(f"job {job.job_id} is already queued")
        self._jobs[job.job_id] = job

    def remove(self, job: Job) -> None:
        if job.job_id not in self._jobs:
            raise SchedulingError(f"job {job.job_id} is not queued")
        del self._jobs[job.job_id]

    def ordered(self, now: float) -> list[Job]:
        """Current queue in scheduling (priority) order."""
        return self.priority.order(list(self._jobs.values()), now)

    def clear(self) -> None:
        self._jobs.clear()
