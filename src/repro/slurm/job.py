"""Runtime job objects and their lifecycle state machine.

A :class:`Job` wraps an immutable :class:`~repro.workload.spec.JobSpec`
with the mutable execution state the simulator evolves: the
remaining-work integrator, the current progress rate (set by the
interference model from the job's node co-runners), and references to
the pending finish/timeout events so they can be rescheduled when the
rate changes.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.cluster.allocation import Allocation
from repro.errors import JobStateError
from repro.workload.spec import JobSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.events import Event


class JobState(enum.Enum):
    """SLURM-style job states (the subset the study needs)."""

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    TIMEOUT = "TIMEOUT"
    CANCELLED = "CANCELLED"
    #: Terminal state of a job that exhausted its requeue budget: the
    #: scheduler gives up instead of requeueing it forever.
    FAILED = "FAILED"

    @property
    def is_terminal(self) -> bool:
        return self in (
            JobState.COMPLETED,
            JobState.TIMEOUT,
            JobState.CANCELLED,
            JobState.FAILED,
        )


_ALLOWED_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.PENDING: frozenset({JobState.RUNNING, JobState.CANCELLED}),
    JobState.RUNNING: frozenset(
        # PENDING re-entry is the requeue path after a node failure;
        # FAILED is the same path once requeue attempts are exhausted.
        {JobState.COMPLETED, JobState.TIMEOUT, JobState.CANCELLED,
         JobState.PENDING, JobState.FAILED}
    ),
    JobState.COMPLETED: frozenset(),
    JobState.TIMEOUT: frozenset(),
    JobState.CANCELLED: frozenset(),
    JobState.FAILED: frozenset(),
}


class Job:
    """Mutable execution state of one submitted job."""

    __slots__ = (
        "spec",
        "state",
        "start_time",
        "end_time",
        "allocation",
        "remaining_work",
        "rate",
        "last_progress_at",
        "finish_event",
        "timeout_event",
        "effective_limit",
        "shared_seconds",
        "corun_job_ids",
        "priority",
        "sharing_now",
        "locality_factor",
        "racks_spanned",
        "requeues",
        "lost_work",
        "checkpoint_tau",
        "checkpoint_overhead",
        "saved_progress",
    )

    def __init__(self, spec: JobSpec):
        self.spec = spec
        self.state = JobState.PENDING
        self.start_time: float | None = None
        self.end_time: float | None = None
        self.allocation: Allocation | None = None
        #: Work left, in exclusive-execution seconds.
        self.remaining_work: float = spec.runtime_exclusive
        #: Current progress rate in work-seconds per wall-second.
        self.rate: float = 0.0
        #: Wall time at which remaining_work was last integrated.
        self.last_progress_at: float = 0.0
        self.finish_event: "Event | None" = None
        self.timeout_event: "Event | None" = None
        #: Walltime limit after dilation grace (set at start).
        self.effective_limit: float = spec.walltime_req
        #: Accumulated wall-seconds during which this job had at least
        #: one co-runner (for accounting/reports).
        self.shared_seconds: float = 0.0
        #: Distinct jobs ever co-allocated with this one.
        self.corun_job_ids: set[int] = set()
        #: Last computed queue priority (refreshed each pass).
        self.priority: float = 0.0
        #: Whether the job currently has a co-runner on any of its
        #: nodes (maintained by the manager at every rate update).
        self.sharing_now: bool = False
        #: Speed factor from the allocation's rack locality (1.0 when
        #: the rack-communication penalty is disabled or the job fits
        #: one rack); fixed at start, multiplies the co-run rate.
        self.locality_factor: float = 1.0
        #: Racks the allocation spans (set at start).
        self.racks_spanned: int = 1
        #: Times the job was requeued after a node failure.
        self.requeues: int = 0
        #: Work-seconds discarded by failures (no checkpointing).
        self.lost_work: float = 0.0
        #: Useful-work seconds between checkpoints; None = the job does
        #: not checkpoint (evictions lose everything).
        self.checkpoint_tau: float | None = None
        #: Wall seconds one checkpoint write costs.
        self.checkpoint_overhead: float = 0.0
        #: Useful work retained from previous attempts (restored at
        #: requeue; the job restarts from here, not from scratch).
        self.saved_progress: float = 0.0

    # ------------------------------------------------------------------
    # Identity and convenience
    # ------------------------------------------------------------------
    @property
    def job_id(self) -> int:
        return self.spec.job_id

    @property
    def num_nodes(self) -> int:
        return self.spec.num_nodes

    @property
    def is_pending(self) -> bool:
        return self.state is JobState.PENDING

    @property
    def is_running(self) -> bool:
        return self.state is JobState.RUNNING

    @property
    def is_shared(self) -> bool:
        return self.allocation is not None and self.allocation.is_shared

    @property
    def wait_time(self) -> float:
        if self.start_time is None:
            raise JobStateError(f"job {self.job_id} never started")
        return self.start_time - self.spec.submit_time

    @property
    def run_time(self) -> float:
        if self.start_time is None or self.end_time is None:
            raise JobStateError(f"job {self.job_id} did not run to an end state")
        return self.end_time - self.start_time

    @property
    def dilation(self) -> float:
        """Realised runtime over exclusive runtime (1.0 = undilated).

        For TIMEOUT jobs this understates true dilation (the run was
        cut short), which accounting reports flag separately.
        """
        return self.run_time / self.spec.runtime_exclusive

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def _transition(self, new_state: JobState) -> None:
        if new_state not in _ALLOWED_TRANSITIONS[self.state]:
            raise JobStateError(
                f"job {self.job_id}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    def mark_started(self, now: float, allocation: Allocation) -> None:
        self._transition(JobState.RUNNING)
        self.start_time = now
        self.allocation = allocation
        self.last_progress_at = now

    def mark_completed(self, now: float) -> None:
        self._transition(JobState.COMPLETED)
        self.end_time = now

    def mark_timeout(self, now: float) -> None:
        self._transition(JobState.TIMEOUT)
        self.end_time = now

    def mark_cancelled(self, now: float) -> None:
        self._transition(JobState.CANCELLED)
        self.end_time = now

    @property
    def progress(self) -> float:
        """Useful work completed so far (exclusive-equivalent seconds)."""
        return self.spec.runtime_exclusive - self.remaining_work

    @property
    def checkpoint_slowdown(self) -> float:
        """Progress-rate multiplier paid for checkpoint writes."""
        if self.checkpoint_tau is None or self.checkpoint_overhead <= 0:
            return 1.0
        return self.checkpoint_tau / (self.checkpoint_tau + self.checkpoint_overhead)

    def checkpointed_progress(self) -> float:
        """Useful work the last completed checkpoint would restore."""
        from repro.resilience.checkpoint import saved_progress

        if self.checkpoint_tau is None:
            return 0.0
        return saved_progress(self.progress, self.checkpoint_tau)

    def mark_requeued(self, now: float, saved: float = 0.0) -> None:
        """Return a running job to the queue after a node failure.

        Without checkpointing (``saved == 0``) all progress is
        discarded and the job restarts from scratch; with a checkpoint
        it resumes from *saved* useful-work seconds when next placed.
        """
        self._transition(JobState.PENDING)
        saved = min(max(0.0, saved), self.progress)
        self.lost_work += self.progress - saved
        self.saved_progress = saved
        self.requeues += 1
        self.start_time = None
        self.end_time = None
        self.allocation = None
        self.remaining_work = self.spec.runtime_exclusive - saved
        self.rate = 0.0
        self.sharing_now = False
        self.shared_seconds = 0.0
        self.corun_job_ids.clear()
        self.locality_factor = 1.0
        self.racks_spanned = 1
        self.finish_event = None
        self.timeout_event = None

    def mark_failed(self, now: float) -> None:
        """Terminal failure: requeue attempts exhausted at an eviction.

        Everything the job ever computed is wasted — the accounting
        record shows zero delivered work and the full loss.
        """
        self._transition(JobState.FAILED)
        self.lost_work += self.progress
        self.remaining_work = self.spec.runtime_exclusive
        self.saved_progress = 0.0
        self.end_time = now

    # ------------------------------------------------------------------
    # Progress integration
    # ------------------------------------------------------------------
    def integrate_progress(self, now: float, shared_now: bool) -> None:
        """Account work done at the current rate since the last update.

        Must be called *before* changing :attr:`rate`.
        """
        if not self.is_running:
            raise JobStateError(
                f"job {self.job_id} is {self.state.value}; cannot integrate progress"
            )
        elapsed = now - self.last_progress_at
        if elapsed < 0:
            raise JobStateError(
                f"job {self.job_id}: progress time moved backwards "
                f"({self.last_progress_at} -> {now})"
            )
        self.remaining_work = max(0.0, self.remaining_work - self.rate * elapsed)
        if shared_now:
            self.shared_seconds += elapsed
        self.last_progress_at = now

    def eta(self, now: float) -> float:
        """Wall time at which the job finishes at the current rate."""
        if self.rate <= 0:
            raise JobStateError(f"job {self.job_id} has rate {self.rate}; no ETA")
        return now + self.remaining_work / self.rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job({self.job_id}, {self.state.value}, app={self.spec.app!r}, "
            f"n={self.num_nodes}, remaining={self.remaining_work:.1f})"
        )
