"""Node-failure injection.

Models independent exponential node failures (per-node MTBF) with a
fixed repair time.  A failure evicts every job on the node — without
checkpointing their progress is lost and they are requeued from
scratch — and takes the node out of service until repaired.

Failure injection is how the test suite exercises the requeue path,
and experiment E20 uses it to ask the sharing-specific question: a
shared node's failure kills *two* jobs, so does node sharing amplify
failure damage enough to erode its efficiency gains?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class FailureModel:
    """Failure process parameters.

    Attributes
    ----------
    mtbf_node_hours:
        Mean time between failures of a *single* node.  The cluster's
        aggregate failure rate is ``num_nodes / mtbf``.
    repair_hours:
        Time a failed node stays out of service.
    """

    mtbf_node_hours: float = 50_000.0
    repair_hours: float = 4.0

    def __post_init__(self) -> None:
        if self.mtbf_node_hours <= 0:
            raise ConfigError("mtbf_node_hours must be positive")
        if self.repair_hours < 0:
            raise ConfigError("repair_hours must be >= 0")

    def cluster_interarrival_seconds(self, num_nodes: int) -> float:
        """Mean seconds between failures anywhere in the cluster."""
        if num_nodes < 1:
            raise ConfigError("num_nodes must be >= 1")
        return self.mtbf_node_hours * 3600.0 / num_nodes

    @property
    def repair_seconds(self) -> float:
        return self.repair_hours * 3600.0
