"""Scheduler configuration, including a slurm.conf-style parser.

The evaluation drives everything programmatically through
:class:`SchedulerConfig`, but the substrate also accepts the familiar
``Key=Value`` configuration format so example setups read like the
real system's::

    NodeCount=128
    CoresPerNode=32
    SchedulerType=sched/backfill
    OverSubscribe=YES:2
    ShareThreshold=1.1
    WalltimeGrace=2.0
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diagnostics.config import DiagnosticsConfig
from repro.errors import ConfigError
from repro.interference.model import ModelParams
from repro.interference.profile import ResourceProfile
from repro.observability.config import TelemetryConfig
from repro.resilience.config import ResilienceConfig
from repro.slurm.priority import PriorityWeights

#: Profile assumed for jobs whose application is unknown (e.g. SWF
#: replays without an executable mapping): a middle-of-the-road mixed
#: workload, deliberately conservative for pairing decisions.
DEFAULT_PROFILE = ResourceProfile(
    name="generic",
    core_demand=0.70,
    membw_demand=0.60,
    cache_footprint=0.45,
    comm_fraction=0.15,
    serial_fraction=0.03,
)


@dataclass
class SchedulerConfig:
    """All tunables of the workload manager and sharing machinery."""

    #: Registry name of the scheduling strategy.
    strategy: str = "easy_backfill"
    #: Seconds between timer-driven scheduler passes (0 = event-driven
    #: only; backfill strategies behave correctly either way because
    #: every submit/finish triggers a pass).
    backfill_interval: float = 0.0
    #: Walltime limit multiplier granted to shared placements, so a
    #: job is never killed for dilation the scheduler itself caused.
    walltime_grace: float = 2.0
    #: Minimum combined pair throughput for co-allocation.
    share_threshold: float = 1.1
    #: Ablation switch: accept all pairs regardless of predictions.
    pairing_oblivious: bool = False
    #: May a shareable job open idle nodes in shared mode?
    allow_open_shared: bool = True
    #: Interference model calibration.
    model_params: ModelParams = field(default_factory=ModelParams)
    #: Multifactor priority weights.
    priority_weights: PriorityWeights = field(default_factory=PriorityWeights)
    #: Profile for jobs with unknown applications.
    default_profile: ResourceProfile = DEFAULT_PROFILE
    #: Cancel (rather than reject with an error) jobs larger than the
    #: cluster — archive traces contain such submissions.
    reject_oversized: bool = False
    #: Prefer node sets spanning few racks (cf. SLURM's topology
    #: plugin).  Placement quality only matters when the execution
    #: model charges for locality (``rack_comm_penalty`` > 0).
    topology_aware: bool = False
    #: Slowdown per additional rack spanned, scaled by the app's
    #: communication fraction:
    #: ``rate *= 1 / (1 + penalty * comm_fraction * (racks - 1))``.
    #: 0 (default) disables locality effects entirely.
    rack_comm_penalty: float = 0.0
    #: Correct scheduling estimates with online per-user walltime
    #: predictions (Tsafrir-style).  Kill timers always use the raw
    #: requested limit regardless.
    use_walltime_prediction: bool = False
    #: How co-located jobs execute: ``"smt"`` (the paper's
    #: hyper-threading lanes) or ``"time_sliced"`` (gang-scheduling-
    #: style round robin; see repro.interference.timeslice).  With
    #: time slicing, set share_threshold below ``1 - switch_overhead``
    #: and walltime_grace above ``2 / (1 - switch_overhead)`` or no
    #: pair will qualify.
    sharing_mode: str = "smt"
    #: Context-switch overhead of time-sliced sharing.
    switch_overhead: float = 0.02
    #: Checkpoint/failure model; None (default) disables the
    #: resilience layer entirely.  A plain dict (e.g. from a campaign
    #: params payload) is converted via ResilienceConfig.from_dict.
    resilience: ResilienceConfig | None = None
    #: Crash-diagnostics settings (flight recorder on, watchdogs off
    #: by default — inert on the happy path).  A plain dict (e.g. from
    #: a campaign params payload) is converted via
    #: DiagnosticsConfig.from_dict.
    diagnostics: DiagnosticsConfig = field(default_factory=DiagnosticsConfig)
    #: Telemetry settings (off by default; purely observational — the
    #: simulation's outputs are byte-identical either way).  A plain
    #: dict is converted via TelemetryConfig.from_dict.
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)

    def __post_init__(self) -> None:
        if isinstance(self.resilience, dict):
            self.resilience = ResilienceConfig.from_dict(self.resilience)
        if isinstance(self.diagnostics, dict):
            self.diagnostics = DiagnosticsConfig.from_dict(self.diagnostics)
        if isinstance(self.telemetry, dict):
            self.telemetry = TelemetryConfig.from_dict(self.telemetry)
        if self.backfill_interval < 0:
            raise ConfigError("backfill_interval must be >= 0")
        if self.walltime_grace < 1.0:
            raise ConfigError("walltime_grace must be >= 1.0")
        if self.share_threshold < 0:
            raise ConfigError("share_threshold must be >= 0")
        if self.rack_comm_penalty < 0:
            raise ConfigError("rack_comm_penalty must be >= 0")
        if self.sharing_mode not in ("smt", "time_sliced"):
            raise ConfigError(
                f"sharing_mode must be 'smt' or 'time_sliced', "
                f"got {self.sharing_mode!r}"
            )
        if not (0.0 <= self.switch_overhead < 1.0):
            raise ConfigError("switch_overhead must be in [0, 1)")


_SCHEDULER_TYPE_MAP = {
    "sched/builtin": "fcfs",
    "sched/backfill": "easy_backfill",
    "sched/conservative": "conservative",
    "sched/first_fit": "first_fit",
}


def parse_slurm_conf(text: str) -> tuple[SchedulerConfig, dict[str, int]]:
    """Parse slurm.conf-style text.

    Returns the scheduler configuration plus cluster-shape keyword
    arguments (``num_nodes``, ``cores``, ``memory_mb``,
    ``nodes_per_rack``) for :meth:`repro.cluster.Cluster.homogeneous`.

    Recognised keys (case-insensitive): NodeCount, CoresPerNode,
    MemoryMB, NodesPerRack, SchedulerType, Strategy, OverSubscribe,
    BackfillInterval, ShareThreshold, WalltimeGrace, PairingOblivious,
    PriorityWeightAge, PriorityWeightJobSize, PriorityWeightFairshare.
    """
    values: dict[str, str] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise ConfigError(f"line {line_no}: expected Key=Value, got {raw!r}")
        key, _, value = line.partition("=")
        values[key.strip().lower()] = value.strip()

    def pop_float(key: str, default: float) -> float:
        raw_value = values.pop(key, None)
        if raw_value is None:
            return default
        try:
            return float(raw_value)
        except ValueError as exc:
            raise ConfigError(f"{key}: {exc}") from exc

    def pop_int(key: str, default: int) -> int:
        return int(pop_float(key, float(default)))

    cluster_kwargs = {
        "num_nodes": pop_int("nodecount", 128),
        "cores": pop_int("corespernode", 32),
        "memory_mb": pop_int("memorymb", 128_000),
        "nodes_per_rack": pop_int("nodesperrack", 16),
    }

    strategy = values.pop("strategy", "")
    sched_type = values.pop("schedulertype", "")
    oversubscribe = values.pop("oversubscribe", "NO").upper()
    if not strategy:
        strategy = _SCHEDULER_TYPE_MAP.get(sched_type, "easy_backfill")
        if oversubscribe.startswith("YES"):
            # OverSubscribe turns the base algorithm into its sharing
            # extension, mirroring how the paper's patch activates.
            strategy = {
                "easy_backfill": "shared_backfill",
                "first_fit": "shared_first_fit",
            }.get(strategy, strategy)

    weights = PriorityWeights(
        age=pop_float("priorityweightage", 1000.0),
        size=pop_float("priorityweightjobsize", 200.0),
        fairshare=pop_float("priorityweightfairshare", 500.0),
    )
    config = SchedulerConfig(
        strategy=strategy,
        backfill_interval=pop_float("backfillinterval", 0.0),
        walltime_grace=pop_float("walltimegrace", 2.0),
        share_threshold=pop_float("sharethreshold", 1.1),
        pairing_oblivious=values.pop("pairingoblivious", "no").lower()
        in ("yes", "true", "1"),
        priority_weights=weights,
    )
    if values:
        raise ConfigError(f"unknown configuration keys: {sorted(values)}")
    return config, cluster_kwargs
