"""SLURM-like workload manager substrate (S3).

Reimplements, in simulation, the scheduler-visible surface of SLURM
that the paper's patch lives in: the job lifecycle state machine, the
pending queue with multifactor priority, walltime enforcement,
accounting records, and the scheduler invocation points (submission,
completion, periodic backfill pass).  The scheduling *policies*
themselves live in :mod:`repro.core` and are plugged in.
"""

from repro.slurm.accounting import AccountingLog, JobRecord
from repro.slurm.config import SchedulerConfig, parse_slurm_conf
from repro.slurm.failures import FailureModel
from repro.slurm.job import Job, JobState
from repro.slurm.manager import SimulationResult, WorkloadManager, run_simulation
from repro.slurm.priority import MultifactorPriority, PriorityWeights
from repro.slurm.queue import PendingQueue
from repro.slurm.reservations import Reservation

__all__ = [
    "AccountingLog",
    "FailureModel",
    "Job",
    "JobRecord",
    "JobState",
    "MultifactorPriority",
    "PendingQueue",
    "PriorityWeights",
    "Reservation",
    "SchedulerConfig",
    "SimulationResult",
    "WorkloadManager",
    "parse_slurm_conf",
    "run_simulation",
]
