"""Online walltime prediction for backfill.

Users over-request walltime by large factors, and backfill quality
degrades with estimate quality (Tsafrir et al.).  The classic remedy
is system-generated predictions from user history: this predictor
learns each user's request-accuracy distribution online and corrects
*scheduling* estimates — never kill timers, which stay at the
requested limit (a prediction must not be able to kill a job).

Prediction = request × a high quantile of the user's recent
``runtime / request`` ratios (a conservative correction: optimistic
predictions delay reservations when wrong, so we lean high), falling
back to the raw request until enough history accumulates.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ConfigError
from repro.slurm.job import Job


class WalltimePredictor:
    """Per-user multiplicative walltime correction, learned online.

    Parameters
    ----------
    quantile:
        Quantile of the user's observed accuracy ratios used as the
        correction factor (high = conservative).
    history:
        Sliding-window length per user; old behaviour ages out.
    min_samples:
        Observations required before corrections apply.
    floor:
        Lower clamp on the correction factor, guarding against a
        pathological history predicting near-zero runtimes.
    """

    def __init__(
        self,
        quantile: float = 0.75,
        history: int = 25,
        min_samples: int = 3,
        floor: float = 0.05,
    ) -> None:
        if not (0.0 < quantile <= 1.0):
            raise ConfigError(f"quantile={quantile} outside (0, 1]")
        if history < 1 or min_samples < 1:
            raise ConfigError("history and min_samples must be >= 1")
        if not (0.0 < floor <= 1.0):
            raise ConfigError(f"floor={floor} outside (0, 1]")
        self.quantile = quantile
        self.history = history
        self.min_samples = min_samples
        self.floor = floor
        self._ratios: dict[str, deque[float]] = {}
        self.observations = 0

    def observe(self, user: str, runtime: float, requested: float) -> None:
        """Record a finished job's accuracy ratio for *user*."""
        if requested <= 0:
            return
        ratio = min(1.0, runtime / requested)
        self._ratios.setdefault(user, deque(maxlen=self.history)).append(ratio)
        self.observations += 1

    def correction(self, user: str) -> float:
        """Current correction factor for *user* (1.0 = no history)."""
        ratios = self._ratios.get(user)
        if ratios is None or len(ratios) < self.min_samples:
            return 1.0
        value = float(np.quantile(np.asarray(ratios), self.quantile))
        return min(1.0, max(self.floor, value))

    def predict(self, job: Job) -> float:
        """Predicted runtime for a pending/running job (seconds).

        Never exceeds the requested walltime (requests are hard upper
        bounds — users are killed at them, so a longer prediction
        would be incoherent).
        """
        return job.spec.walltime_req * self.correction(job.spec.user)
